//! The [`PenaltyModel`] abstraction shared by all predictive models.

use crate::penalty::Penalty;
use crate::scratch::{ModelScratch, NoScratch, QueryOutcome};
use netbw_graph::Communication;

/// An instantaneous bandwidth-sharing model.
///
/// Given the set of communications in flight *right now*, a model assigns
/// each a [`Penalty`] — the factor by which its transfer rate is reduced
/// relative to running alone. The fluid solver (`netbw-fluid`) integrates
/// these instantaneous penalties over time, re-querying the model whenever
/// a communication completes or a new one starts.
///
/// # Contract
///
/// * The returned vector is aligned with (and as long as) the input slice.
/// * Intra-node communications (`src == dst`) never cross the NIC; models
///   must give them penalty 1 and exclude them from degree counts. The
///   helper [`split_intra_node`] implements this policy.
/// * Penalties are `>= 1` and finite ([`Penalty`] enforces this).
/// * A single inter-node communication with no conflict has penalty 1
///   (`Tref` is *defined* as its time).
pub trait PenaltyModel: Send + Sync {
    /// A short stable name for reports and tables.
    fn name(&self) -> &'static str;

    /// Penalties for the given set of concurrent communications.
    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty>;

    /// Creates the opaque per-cache scratch state for
    /// [`Self::penalties_with_scratch`]. The query issuer (one penalty
    /// cache) owns it and hands it back on every query; models with
    /// nothing to keep return the default [`NoScratch`].
    fn new_scratch(&self) -> Box<dyn ModelScratch> {
        Box::new(NoScratch)
    }

    /// The stateful batch-delta entry point of the incremental fluid
    /// engine: penalties for a population that evolved from the previously
    /// queried one as described by `delta`, with `scratch` carrying the
    /// model's own state between settles (endpoint indices for the
    /// closed-form models, union–find conflict components plus a cached
    /// budget certification for Myrinet — see [`crate::incremental`] and
    /// the per-model docs).
    ///
    /// `previous` carries the last-queried population and its penalties
    /// (`None` on the first query); a cold scratch is *seeded* from it, so
    /// stateless callers (and the [`Self::penalties_after_change`]
    /// convenience wrapper) still get incremental patches. The default
    /// implementation recomputes from scratch and reports a non-patched
    /// [`QueryOutcome`].
    ///
    /// The contract is identical to [`Self::penalties`]: the result must
    /// equal `self.penalties(comms)` bit-for-bit. Implementations must
    /// treat `delta`, `previous` *and the scratch* as hints: on any
    /// inconsistency (see the invariants on [`PopulationDelta`]) the model
    /// falls back to a full recompute — and rebuilds the scratch — rather
    /// than producing wrong penalties.
    fn penalties_with_scratch(
        &self,
        comms: &[Communication],
        delta: &PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
        scratch: &mut dyn ModelScratch,
    ) -> (Vec<Penalty>, QueryOutcome) {
        let _ = (delta, previous, scratch);
        (self.penalties(comms), QueryOutcome::default())
    }

    /// Stateless convenience wrapper around
    /// [`Self::penalties_with_scratch`]: runs the query over a fresh
    /// scratch (seeded from `previous`), discarding the scratch and the
    /// outcome. Kept as the ergonomic entry point for tests and one-shot
    /// callers; long-lived callers hold a scratch and use the stateful
    /// entry point directly.
    fn penalties_after_change(
        &self,
        comms: &[Communication],
        delta: PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
    ) -> Vec<Penalty> {
        let mut scratch = self.new_scratch();
        self.penalties_with_scratch(comms, &delta, previous, scratch.as_mut())
            .0
    }

    /// Penalty of one communication inside a population. Convenience used
    /// by tests and spot checks; index must be in range.
    fn penalty_of(&self, comms: &[Communication], index: usize) -> Penalty {
        self.penalties(comms)[index]
    }
}

/// How an in-flight population evolved since a model was last queried.
///
/// Produced by the incremental fluid engine (`netbw-fluid`, which derives
/// it from stable slab keys) and consumed by
/// [`PenaltyModel::penalties_after_change`] specializations. The positional
/// variants let a model pair every surviving communication with its
/// previous penalty in one linear merge scan, then recompute only the
/// communications a change can actually affect.
///
/// # Invariants
///
/// * [`PopulationDelta::Arrived`] holds **strictly increasing** positions
///   into the *new* population slice; every entry not at one of those
///   positions appeared in the previous population, in the same relative
///   order.
/// * [`PopulationDelta::Departed`] holds **strictly increasing** positions
///   into the *previous* population slice; the survivors make up the new
///   slice exactly, in the same relative order.
/// * [`PopulationDelta::Mixed`] chains the two: it is exactly
///   `Departed(departed)` applied to the previous population, followed by
///   `Arrived(arrived)` applied to the intermediate result — both position
///   vectors strictly increasing, `departed` into the *previous* slice,
///   `arrived` into the *new* one. Simultaneous arrival+departure batches
///   (a completion coinciding with a gate opening) stay positional instead
///   of degrading to [`PopulationDelta::Rebuilt`].
///
/// Consumers must not trust these invariants blindly:
/// [`crate::incremental::align`] verifies them (including per-entry
/// equality of the paired communications) and returns `None` on any
/// inconsistency, which models answer with a full recompute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PopulationDelta {
    /// Positions (in the new population) of freshly arrived communications
    /// — new transfers or opened latency gates. May be empty: an empty
    /// arrival delta asserts the population is unchanged.
    Arrived(Vec<usize>),
    /// Positions (in the previous population) of departed communications
    /// (completions).
    Departed(Vec<usize>),
    /// A simultaneous arrival+departure batch, expressed as two chained
    /// positional deltas: departures first (positions in the *previous*
    /// population), then arrivals (positions in the *new* one).
    Mixed {
        /// Positions (in the previous population) of departed
        /// communications; applied first.
        departed: Vec<usize>,
        /// Positions (in the new population) of arrived communications;
        /// applied second.
        arrived: Vec<usize>,
    },
    /// First query, or a transition the cache could not explain
    /// positionally.
    Rebuilt,
}

impl PopulationDelta {
    /// True when the delta asserts the population did not change at all.
    pub fn is_empty(&self) -> bool {
        match self {
            PopulationDelta::Arrived(idx) | PopulationDelta::Departed(idx) => idx.is_empty(),
            PopulationDelta::Mixed { departed, arrived } => {
                departed.is_empty() && arrived.is_empty()
            }
            PopulationDelta::Rebuilt => false,
        }
    }
}

impl<M: PenaltyModel + ?Sized> PenaltyModel for &M {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        (**self).penalties(comms)
    }
    fn new_scratch(&self) -> Box<dyn ModelScratch> {
        (**self).new_scratch()
    }
    fn penalties_with_scratch(
        &self,
        comms: &[Communication],
        delta: &PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
        scratch: &mut dyn ModelScratch,
    ) -> (Vec<Penalty>, QueryOutcome) {
        (**self).penalties_with_scratch(comms, delta, previous, scratch)
    }
    fn penalties_after_change(
        &self,
        comms: &[Communication],
        delta: PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
    ) -> Vec<Penalty> {
        (**self).penalties_after_change(comms, delta, previous)
    }
}

impl<M: PenaltyModel + ?Sized> PenaltyModel for Box<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        (**self).penalties(comms)
    }
    fn new_scratch(&self) -> Box<dyn ModelScratch> {
        (**self).new_scratch()
    }
    fn penalties_with_scratch(
        &self,
        comms: &[Communication],
        delta: &PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
        scratch: &mut dyn ModelScratch,
    ) -> (Vec<Penalty>, QueryOutcome) {
        (**self).penalties_with_scratch(comms, delta, previous, scratch)
    }
    fn penalties_after_change(
        &self,
        comms: &[Communication],
        delta: PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
    ) -> Vec<Penalty> {
        (**self).penalties_after_change(comms, delta, previous)
    }
}

impl<M: PenaltyModel + ?Sized> PenaltyModel for std::sync::Arc<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        (**self).penalties(comms)
    }
    fn new_scratch(&self) -> Box<dyn ModelScratch> {
        (**self).new_scratch()
    }
    fn penalties_with_scratch(
        &self,
        comms: &[Communication],
        delta: &PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
        scratch: &mut dyn ModelScratch,
    ) -> (Vec<Penalty>, QueryOutcome) {
        (**self).penalties_with_scratch(comms, delta, previous, scratch)
    }
    fn penalties_after_change(
        &self,
        comms: &[Communication],
        delta: PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
    ) -> Vec<Penalty> {
        (**self).penalties_after_change(comms, delta, previous)
    }
}

/// Splits a communication population into network communications (returned
/// with their original indices) and intra-node ones. Models compute on the
/// former; the latter get [`Penalty::ONE`].
pub fn split_intra_node(comms: &[Communication]) -> (Vec<usize>, Vec<Communication>) {
    let mut indices = Vec::with_capacity(comms.len());
    let mut network = Vec::with_capacity(comms.len());
    for (i, c) in comms.iter().enumerate() {
        if !c.is_intra_node() {
            indices.push(i);
            network.push(*c);
        }
    }
    (indices, network)
}

/// Scatters penalties computed on the network subset back into a
/// full-length vector, filling intra-node slots with penalty 1.
pub fn scatter_penalties(
    total_len: usize,
    indices: &[usize],
    network_penalties: &[Penalty],
) -> Vec<Penalty> {
    debug_assert_eq!(indices.len(), network_penalties.len());
    let mut out = vec![Penalty::ONE; total_len];
    for (&i, &p) in indices.iter().zip(network_penalties) {
        out[i] = p;
    }
    out
}

/// Identifies a model family; useful for command-line harnesses and
/// experiment configs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The paper's Gigabit Ethernet model (§V.A).
    GigabitEthernet,
    /// The paper's Myrinet 2000 state-set model (§V.B).
    Myrinet,
    /// Our InfiniBand extension model (paper future work).
    Infiniband,
    /// Contention-blind LogP/LogGP-style baseline.
    Linear,
    /// Kim & Lee max-conflict-multiplier baseline.
    MaxConflict,
}

impl ModelKind {
    /// All kinds, in presentation order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::GigabitEthernet,
        ModelKind::Myrinet,
        ModelKind::Infiniband,
        ModelKind::Linear,
        ModelKind::MaxConflict,
    ];

    /// Builds the model with its default (paper-calibrated) parameters.
    pub fn build(self) -> Box<dyn PenaltyModel> {
        match self {
            ModelKind::GigabitEthernet => Box::new(crate::GigabitEthernetModel::default()),
            ModelKind::Myrinet => Box::new(crate::MyrinetModel::default()),
            ModelKind::Infiniband => Box::new(crate::InfinibandModel::default()),
            ModelKind::Linear => Box::new(crate::baseline::LinearModel),
            ModelKind::MaxConflict => Box::new(crate::baseline::MaxConflictModel),
        }
    }

    /// Parses a user-facing name (`gige`, `myrinet`, `infiniband`,
    /// `linear`, `maxconflict`).
    pub fn parse(s: &str) -> Option<ModelKind> {
        match s.to_ascii_lowercase().as_str() {
            "gige" | "gigabit" | "ethernet" | "gigabit-ethernet" => {
                Some(ModelKind::GigabitEthernet)
            }
            "myrinet" | "mx" => Some(ModelKind::Myrinet),
            "infiniband" | "ib" => Some(ModelKind::Infiniband),
            "linear" | "logp" | "loggp" => Some(ModelKind::Linear),
            "maxconflict" | "max-conflict" | "kimlee" | "kim-lee" => Some(ModelKind::MaxConflict),
            _ => None,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ModelKind::GigabitEthernet => "gige",
            ModelKind::Myrinet => "myrinet",
            ModelKind::Infiniband => "infiniband",
            ModelKind::Linear => "linear",
            ModelKind::MaxConflict => "maxconflict",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_scatter_round_trip() {
        let comms = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(2u32, 2u32, 10), // intra-node
            Communication::new(0u32, 3u32, 10),
        ];
        let (idx, net) = split_intra_node(&comms);
        assert_eq!(idx, vec![0, 2]);
        assert_eq!(net.len(), 2);
        let out = scatter_penalties(3, &idx, &[Penalty::new(2.0), Penalty::new(3.0)]);
        assert_eq!(out[0].value(), 2.0);
        assert_eq!(out[1].value(), 1.0);
        assert_eq!(out[2].value(), 3.0);
    }

    #[test]
    fn model_kind_parse_and_display() {
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::parse(&kind.to_string()), Some(kind));
        }
        assert_eq!(ModelKind::parse("GigE"), Some(ModelKind::GigabitEthernet));
        assert_eq!(ModelKind::parse("kim-lee"), Some(ModelKind::MaxConflict));
        assert_eq!(ModelKind::parse("token-ring"), None);
    }

    #[test]
    fn build_produces_named_models() {
        for kind in ModelKind::ALL {
            let m = kind.build();
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn delta_is_empty_only_for_empty_positional_variants() {
        use PopulationDelta::*;
        assert!(Arrived(vec![]).is_empty());
        assert!(Departed(vec![]).is_empty());
        assert!(Mixed {
            departed: vec![],
            arrived: vec![]
        }
        .is_empty());
        assert!(!Arrived(vec![0]).is_empty());
        assert!(!Mixed {
            departed: vec![0],
            arrived: vec![]
        }
        .is_empty());
        assert!(!Rebuilt.is_empty());
    }

    #[test]
    fn penalties_after_change_matches_penalties_even_on_garbage_hints() {
        // The delta/previous pair below is deliberately inconsistent with
        // `comms` (wrong lengths, wrong pairings): every model must detect
        // that and fall back to a full recompute.
        let comms = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(0u32, 2u32, 10),
            Communication::new(3u32, 2u32, 10),
        ];
        let prior = [Communication::new(0u32, 1u32, 10)];
        for kind in ModelKind::ALL {
            let model = kind.build();
            let full = model.penalties(&comms);
            let prior_penalties = model.penalties(&prior);
            for previous in [None, Some((prior.as_slice(), prior_penalties.as_slice()))] {
                for delta in [
                    PopulationDelta::Arrived(vec![1]),
                    PopulationDelta::Departed(vec![0, 2]),
                    PopulationDelta::Mixed {
                        departed: vec![0],
                        arrived: vec![1],
                    },
                    PopulationDelta::Rebuilt,
                ] {
                    assert_eq!(
                        model.penalties_after_change(&comms, delta, previous),
                        full,
                        "{kind}"
                    );
                }
            }
        }
    }

    #[test]
    fn penalties_after_change_honours_consistent_arrival_hints() {
        // comms[1] arrived; comms[0] and comms[2] survive from `prior` in
        // order. Patched answers must equal the full evaluation.
        let comms = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(0u32, 2u32, 10),
            Communication::new(3u32, 2u32, 10),
        ];
        let prior = [comms[0], comms[2]];
        for kind in ModelKind::ALL {
            let model = kind.build();
            let full = model.penalties(&comms);
            let prior_penalties = model.penalties(&prior);
            let got = model.penalties_after_change(
                &comms,
                PopulationDelta::Arrived(vec![1]),
                Some((prior.as_slice(), prior_penalties.as_slice())),
            );
            assert_eq!(got, full, "{kind}");
        }
    }

    #[test]
    fn penalties_after_change_honours_consistent_mixed_hints() {
        // prior[1] departed while comms[1] arrived: one chained mixed
        // delta. Patched answers must equal the full evaluation.
        let comms = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(0u32, 2u32, 10),
            Communication::new(3u32, 2u32, 10),
        ];
        let prior = [comms[0], Communication::new(4u32, 5u32, 10), comms[2]];
        for kind in ModelKind::ALL {
            let model = kind.build();
            let full = model.penalties(&comms);
            let prior_penalties = model.penalties(&prior);
            let got = model.penalties_after_change(
                &comms,
                PopulationDelta::Mixed {
                    departed: vec![1],
                    arrived: vec![1],
                },
                Some((prior.as_slice(), prior_penalties.as_slice())),
            );
            assert_eq!(got, full, "{kind}");
        }
    }

    #[test]
    fn scratch_state_carries_between_settles() {
        // Drive two settles through one scratch: the second query patches
        // from state the scratch kept (no `previous` hint supplied at all)
        // and still matches the full evaluation bit-for-bit.
        let first = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(2u32, 3u32, 10),
        ];
        let mut second = first.clone();
        second.push(Communication::new(0u32, 4u32, 10));
        // The three specialized models must actually *use* the scratch:
        // with no `previous` hint, only state carried inside the scratch
        // can make the second query a patch.
        let specialized = [
            ModelKind::GigabitEthernet,
            ModelKind::Myrinet,
            ModelKind::Infiniband,
        ];
        for kind in ModelKind::ALL {
            let model = kind.build();
            let mut scratch = model.new_scratch();
            let (p1, o1) = model.penalties_with_scratch(
                &first,
                &PopulationDelta::Rebuilt,
                None,
                scratch.as_mut(),
            );
            assert_eq!(p1, model.penalties(&first), "{kind}");
            assert!(!o1.patched, "{kind}: first settle cannot patch");
            let (p2, o2) = model.penalties_with_scratch(
                &second,
                &PopulationDelta::Arrived(vec![2]),
                None,
                scratch.as_mut(),
            );
            assert_eq!(p2, model.penalties(&second), "{kind}");
            if specialized.contains(&kind) {
                assert!(o2.patched, "{kind}: second settle must patch from scratch");
                assert!(
                    !o2.scratch_rebuilt,
                    "{kind}: warm scratch must not be rebuilt"
                );
            }
        }
    }
}
