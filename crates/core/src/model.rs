//! The [`PenaltyModel`] abstraction shared by all predictive models.

use crate::penalty::Penalty;
use netbw_graph::Communication;

/// An instantaneous bandwidth-sharing model.
///
/// Given the set of communications in flight *right now*, a model assigns
/// each a [`Penalty`] — the factor by which its transfer rate is reduced
/// relative to running alone. The fluid solver (`netbw-fluid`) integrates
/// these instantaneous penalties over time, re-querying the model whenever
/// a communication completes or a new one starts.
///
/// # Contract
///
/// * The returned vector is aligned with (and as long as) the input slice.
/// * Intra-node communications (`src == dst`) never cross the NIC; models
///   must give them penalty 1 and exclude them from degree counts. The
///   helper [`split_intra_node`] implements this policy.
/// * Penalties are `>= 1` and finite ([`Penalty`] enforces this).
/// * A single inter-node communication with no conflict has penalty 1
///   (`Tref` is *defined* as its time).
pub trait PenaltyModel: Send + Sync {
    /// A short stable name for reports and tables.
    fn name(&self) -> &'static str;

    /// Penalties for the given set of concurrent communications.
    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty>;

    /// Penalties for a population that evolved from the previously queried
    /// one as described by `delta` — the batch-delta entry point of the
    /// incremental fluid engine.
    ///
    /// `previous` carries the last-queried population and its penalties
    /// (`None` on the first query), so models stay stateless: everything
    /// needed to patch instead of recompute arrives with the call. The
    /// default implementation recomputes from scratch; models whose
    /// penalties are cheap to patch (the GigE closed form only depends on
    /// per-endpoint degrees, so an arrival or departure touches one source
    /// and one destination group) can override this to skip the full
    /// evaluation. The contract is identical to [`Self::penalties`]: the
    /// result must equal `self.penalties(comms)`.
    fn penalties_after_change(
        &self,
        comms: &[Communication],
        delta: PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
    ) -> Vec<Penalty> {
        let _ = (delta, previous);
        self.penalties(comms)
    }

    /// Penalty of one communication inside a population. Convenience used
    /// by tests and spot checks; index must be in range.
    fn penalty_of(&self, comms: &[Communication], index: usize) -> Penalty {
        self.penalties(comms)[index]
    }
}

/// How an in-flight population evolved since a model was last queried.
///
/// Produced by the incremental fluid engine (`netbw-fluid`) and consumed
/// by [`PenaltyModel::penalties_after_change`] specializations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopulationDelta {
    /// `n` communications joined (new transfers or opened latency gates);
    /// all previously present communications are still in place.
    Arrived(usize),
    /// `n` communications left (completions); the survivors are unchanged
    /// but may have been reordered.
    Departed(usize),
    /// First query, or an arbitrary mix of arrivals and departures.
    Rebuilt,
}

impl PopulationDelta {
    /// Folds another change into this one: consecutive same-kind changes
    /// accumulate, mixes degrade to [`PopulationDelta::Rebuilt`].
    pub fn merge(self, other: PopulationDelta) -> PopulationDelta {
        match (self, other) {
            (PopulationDelta::Arrived(a), PopulationDelta::Arrived(b)) => {
                PopulationDelta::Arrived(a + b)
            }
            (PopulationDelta::Departed(a), PopulationDelta::Departed(b)) => {
                PopulationDelta::Departed(a + b)
            }
            _ => PopulationDelta::Rebuilt,
        }
    }
}

impl<M: PenaltyModel + ?Sized> PenaltyModel for &M {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        (**self).penalties(comms)
    }
    fn penalties_after_change(
        &self,
        comms: &[Communication],
        delta: PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
    ) -> Vec<Penalty> {
        (**self).penalties_after_change(comms, delta, previous)
    }
}

impl<M: PenaltyModel + ?Sized> PenaltyModel for Box<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        (**self).penalties(comms)
    }
    fn penalties_after_change(
        &self,
        comms: &[Communication],
        delta: PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
    ) -> Vec<Penalty> {
        (**self).penalties_after_change(comms, delta, previous)
    }
}

/// Splits a communication population into network communications (returned
/// with their original indices) and intra-node ones. Models compute on the
/// former; the latter get [`Penalty::ONE`].
pub fn split_intra_node(comms: &[Communication]) -> (Vec<usize>, Vec<Communication>) {
    let mut indices = Vec::with_capacity(comms.len());
    let mut network = Vec::with_capacity(comms.len());
    for (i, c) in comms.iter().enumerate() {
        if !c.is_intra_node() {
            indices.push(i);
            network.push(*c);
        }
    }
    (indices, network)
}

/// Scatters penalties computed on the network subset back into a
/// full-length vector, filling intra-node slots with penalty 1.
pub fn scatter_penalties(
    total_len: usize,
    indices: &[usize],
    network_penalties: &[Penalty],
) -> Vec<Penalty> {
    debug_assert_eq!(indices.len(), network_penalties.len());
    let mut out = vec![Penalty::ONE; total_len];
    for (&i, &p) in indices.iter().zip(network_penalties) {
        out[i] = p;
    }
    out
}

/// Identifies a model family; useful for command-line harnesses and
/// experiment configs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The paper's Gigabit Ethernet model (§V.A).
    GigabitEthernet,
    /// The paper's Myrinet 2000 state-set model (§V.B).
    Myrinet,
    /// Our InfiniBand extension model (paper future work).
    Infiniband,
    /// Contention-blind LogP/LogGP-style baseline.
    Linear,
    /// Kim & Lee max-conflict-multiplier baseline.
    MaxConflict,
}

impl ModelKind {
    /// All kinds, in presentation order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::GigabitEthernet,
        ModelKind::Myrinet,
        ModelKind::Infiniband,
        ModelKind::Linear,
        ModelKind::MaxConflict,
    ];

    /// Builds the model with its default (paper-calibrated) parameters.
    pub fn build(self) -> Box<dyn PenaltyModel> {
        match self {
            ModelKind::GigabitEthernet => Box::new(crate::GigabitEthernetModel::default()),
            ModelKind::Myrinet => Box::new(crate::MyrinetModel::default()),
            ModelKind::Infiniband => Box::new(crate::InfinibandModel::default()),
            ModelKind::Linear => Box::new(crate::baseline::LinearModel),
            ModelKind::MaxConflict => Box::new(crate::baseline::MaxConflictModel),
        }
    }

    /// Parses a user-facing name (`gige`, `myrinet`, `infiniband`,
    /// `linear`, `maxconflict`).
    pub fn parse(s: &str) -> Option<ModelKind> {
        match s.to_ascii_lowercase().as_str() {
            "gige" | "gigabit" | "ethernet" | "gigabit-ethernet" => {
                Some(ModelKind::GigabitEthernet)
            }
            "myrinet" | "mx" => Some(ModelKind::Myrinet),
            "infiniband" | "ib" => Some(ModelKind::Infiniband),
            "linear" | "logp" | "loggp" => Some(ModelKind::Linear),
            "maxconflict" | "max-conflict" | "kimlee" | "kim-lee" => Some(ModelKind::MaxConflict),
            _ => None,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ModelKind::GigabitEthernet => "gige",
            ModelKind::Myrinet => "myrinet",
            ModelKind::Infiniband => "infiniband",
            ModelKind::Linear => "linear",
            ModelKind::MaxConflict => "maxconflict",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_scatter_round_trip() {
        let comms = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(2u32, 2u32, 10), // intra-node
            Communication::new(0u32, 3u32, 10),
        ];
        let (idx, net) = split_intra_node(&comms);
        assert_eq!(idx, vec![0, 2]);
        assert_eq!(net.len(), 2);
        let out = scatter_penalties(3, &idx, &[Penalty::new(2.0), Penalty::new(3.0)]);
        assert_eq!(out[0].value(), 2.0);
        assert_eq!(out[1].value(), 1.0);
        assert_eq!(out[2].value(), 3.0);
    }

    #[test]
    fn model_kind_parse_and_display() {
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::parse(&kind.to_string()), Some(kind));
        }
        assert_eq!(ModelKind::parse("GigE"), Some(ModelKind::GigabitEthernet));
        assert_eq!(ModelKind::parse("kim-lee"), Some(ModelKind::MaxConflict));
        assert_eq!(ModelKind::parse("token-ring"), None);
    }

    #[test]
    fn build_produces_named_models() {
        for kind in ModelKind::ALL {
            let m = kind.build();
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn delta_merge_accumulates_same_kind_and_degrades_mixes() {
        use PopulationDelta::*;
        assert_eq!(Arrived(2).merge(Arrived(3)), Arrived(5));
        assert_eq!(Departed(1).merge(Departed(1)), Departed(2));
        assert_eq!(Arrived(1).merge(Departed(1)), Rebuilt);
        assert_eq!(Rebuilt.merge(Arrived(1)), Rebuilt);
    }

    #[test]
    fn penalties_after_change_default_matches_penalties() {
        let comms = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(0u32, 2u32, 10),
            Communication::new(3u32, 2u32, 10),
        ];
        let prior = [Communication::new(0u32, 1u32, 10)];
        for kind in ModelKind::ALL {
            let model = kind.build();
            let full = model.penalties(&comms);
            let prior_penalties = model.penalties(&prior);
            for previous in [None, Some((prior.as_slice(), prior_penalties.as_slice()))] {
                for delta in [
                    PopulationDelta::Arrived(1),
                    PopulationDelta::Departed(2),
                    PopulationDelta::Rebuilt,
                ] {
                    assert_eq!(
                        model.penalties_after_change(&comms, delta, previous),
                        full,
                        "{kind}"
                    );
                }
            }
        }
    }
}
