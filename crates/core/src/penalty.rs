//! The penalty value type.

use std::fmt;

/// The slowdown factor of a communication under contention:
/// `P = T / Tref` (§IV.B). `P = 1` means the communication proceeds at its
/// uncontended rate; `P = 2.5` means it takes 2.5× longer.
///
/// Invariants: finite and `>= 1` (models clamp — a shared network can never
/// make a transfer faster than its exclusive reference time; the paper's
/// measured penalties are all `>= 1`).
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Penalty(f64);

impl Penalty {
    /// The neutral penalty (uncontended communication).
    pub const ONE: Penalty = Penalty(1.0);

    /// Creates a penalty, clamping to the `[1, ∞)` invariant.
    ///
    /// # Panics
    /// If `value` is NaN or infinite — a model producing those has a bug
    /// worth failing loudly on.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "penalty must be finite, got {value}");
        Penalty(value.max(1.0))
    }

    /// The slowdown factor.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The instantaneous rate fraction `1/P` (share of the uncontended
    /// bandwidth the communication receives).
    #[inline]
    pub fn rate(self) -> f64 {
        1.0 / self.0
    }

    /// Pointwise maximum (the paper's `p = max(po, pi)`).
    pub fn max(self, other: Penalty) -> Penalty {
        Penalty(self.0.max(other.0))
    }
}

impl Default for Penalty {
    fn default() -> Self {
        Penalty::ONE
    }
}

impl fmt::Display for Penalty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // match the paper's table style: up to 3 decimals, trailing zeros trimmed
        let s = format!("{:.3}", self.0);
        let s = s.trim_end_matches('0').trim_end_matches('.');
        f.write_str(s)
    }
}

impl From<Penalty> for f64 {
    fn from(p: Penalty) -> f64 {
        p.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_below_one() {
        assert_eq!(Penalty::new(0.3).value(), 1.0);
        assert_eq!(Penalty::new(1.0).value(), 1.0);
        assert_eq!(Penalty::new(2.5).value(), 2.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Penalty::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_infinity() {
        Penalty::new(f64::INFINITY);
    }

    #[test]
    fn rate_is_reciprocal() {
        assert_eq!(Penalty::new(4.0).rate(), 0.25);
        assert_eq!(Penalty::ONE.rate(), 1.0);
    }

    #[test]
    fn max_combines() {
        let a = Penalty::new(1.5);
        let b = Penalty::new(2.25);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(Penalty::new(2.5).to_string(), "2.5");
        assert_eq!(Penalty::new(1.0).to_string(), "1");
        assert_eq!(Penalty::new(1.725).to_string(), "1.725");
    }
}
