//! InfiniBand penalty model — **our extension**.
//!
//! The paper measures InfiniHost III penalties (Fig. 2) and announces an
//! InfiniBand model as future work ("We are working too on the model of the
//! Infiniband InfinihostIII and ConnectX interconnect"). This module
//! provides one, calibrated on the paper's published measurements; it is
//! *not* part of the original contribution and is flagged as an extension
//! as EXT-1 in `ARCHITECTURE.md`.
//!
//! Observations from Fig. 2 (InfiniHost III column):
//!
//! * same-direction sharing is near-fair and sub-linear exactly like TCP,
//!   with a higher single-stream efficiency: `2 → 1.725`, `3 → 2.61`
//!   (`β ≈ 0.8625`);
//! * credit-based flow control isolates directions well: one opposing flow
//!   leaves a transfer almost untouched (scheme 4: `d = 1.14`, `a,b,c`
//!   unchanged at 2.61);
//! * beyond one opposing flow, host/PCIe pressure appears on both sides
//!   (scheme 5: outgoing `3.66 ≈ 2.61·1.4`, incoming `2.035 ≈ 1.725·1.18`).
//!
//! The model keeps the paper's GigE functional form for same-direction
//! conflicts (with `γ = 0`: the credit mechanism is fair) and adds a
//! multiplicative duplex-coupling term driven by the number of *opposing*
//! flows at each endpoint:
//!
//! ```text
//! po, pi  — GigE form with β = 0.8625, γo = γi = 0
//! tx_dx   = 1 + δ_tx · max(0, in(vs) − 1)      (δ_tx = 0.33)
//! rx_dx   = 1 + δ_rx · max(0, out(vd) − 2)     (δ_rx = 0.14)
//! p       = max(po · tx_dx, pi · rx_dx, 1)
//! ```
//!
//! where `in(vs)` is the number of flows entering the source node and
//! `out(vd)` the number leaving the destination node. The thresholds (−1,
//! −2) encode that IB tolerates one opposing flow for free on the send
//! side and two on the receive side, as measured.

use crate::gige::GigabitEthernetModel;
use crate::incremental::{
    endpoint_scratch_query, AffectedEndpoints, EndpointIndex, EndpointScratch,
};
use crate::model::{scatter_penalties, split_intra_node, PenaltyModel, PopulationDelta};
use crate::penalty::Penalty;
use crate::scratch::{ModelScratch, QueryOutcome};
use netbw_graph::Communication;

/// Extension model for InfiniBand (InfiniHost III class hardware).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InfinibandModel {
    /// Single-stream efficiency (fit: 1.725/2 = 0.8625).
    pub beta: f64,
    /// Send-side duplex coupling per opposing flow beyond the first.
    pub delta_tx: f64,
    /// Receive-side duplex coupling per opposing flow beyond the second.
    pub delta_rx: f64,
}

impl Default for InfinibandModel {
    fn default() -> Self {
        InfinibandModel {
            beta: 0.8625,
            delta_tx: 0.33,
            delta_rx: 0.14,
        }
    }
}

impl InfinibandModel {
    /// Builds a model with explicit parameters.
    ///
    /// # Panics
    /// If `beta` is not in `(0, 1]` or a `δ` is negative.
    pub fn new(beta: f64, delta_tx: f64, delta_rx: f64) -> Self {
        assert!(
            beta > 0.0 && beta <= 1.0,
            "beta must be in (0,1], got {beta}"
        );
        assert!(delta_tx >= 0.0, "delta_tx must be >= 0");
        assert!(delta_rx >= 0.0, "delta_rx must be >= 0");
        InfinibandModel {
            beta,
            delta_tx,
            delta_rx,
        }
    }

    /// Penalty of one network communication over an endpoint index —
    /// shared by the batch evaluation and the incremental patch.
    fn penalty_indexed(
        &self,
        c: &Communication,
        index: &EndpointIndex,
        fair: &GigabitEthernetModel,
    ) -> Penalty {
        let po = fair.po_indexed(c, index);
        let pi = fair.pi_indexed(c, index);
        let opposing_at_src = index.in_degree(c.src);
        let opposing_at_dst = index.out_degree(c.dst);
        let tx_dx = 1.0 + self.delta_tx * (opposing_at_src.saturating_sub(1)) as f64;
        let rx_dx = 1.0 + self.delta_rx * (opposing_at_dst.saturating_sub(2)) as f64;
        Penalty::new((po * tx_dx).max(pi * rx_dx))
    }

    /// True when `comm`'s penalty can have changed: the GigE closed-form
    /// reach (`aff.touches`), plus the duplex terms — `tx_dx` reads the
    /// in-degree of the *source* node and `rx_dx` the out-degree of the
    /// *destination* node, so a changed flow also reaches every flow whose
    /// source it enters or whose destination it leaves.
    fn touches(aff: &AffectedEndpoints, comm: &Communication) -> bool {
        aff.touches(comm)
            || aff.changed_dests.contains(&comm.src)
            || aff.changed_sources.contains(&comm.dst)
    }
}

impl PenaltyModel for InfinibandModel {
    fn name(&self) -> &'static str {
        "infiniband"
    }

    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        let (indices, network) = split_intra_node(comms);
        // Reuse the GigE po/pi machinery with γ = 0.
        let fair = GigabitEthernetModel::new(self.beta, 0.0, 0.0);
        let index = EndpointIndex::build(&network);
        let net: Vec<Penalty> = network
            .iter()
            .map(|c| self.penalty_indexed(c, &index, &fair))
            .collect();
        scatter_penalties(comms.len(), &indices, &net)
    }

    fn new_scratch(&self) -> Box<dyn ModelScratch> {
        Box::new(EndpointScratch::default())
    }

    /// O(affected) patch over the per-cache [`EndpointScratch`], like the
    /// GigE one but with the duplex-coupling reach added to the affected
    /// test: a changed flow also reaches every flow whose source it enters
    /// (`tx_dx`) or whose destination it leaves (`rx_dx`).
    fn penalties_with_scratch(
        &self,
        comms: &[Communication],
        delta: &PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
        scratch: &mut dyn ModelScratch,
    ) -> (Vec<Penalty>, QueryOutcome) {
        let fair = GigabitEthernetModel::new(self.beta, 0.0, 0.0);
        endpoint_scratch_query(
            comms,
            delta,
            previous,
            scratch,
            Self::touches,
            |c, index| self.penalty_indexed(c, index, &fair),
            || self.penalties(comms),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_graph::schemes;

    fn penalties(scheme: usize) -> Vec<f64> {
        InfinibandModel::default()
            .penalties(schemes::fig2_scheme(scheme).comms())
            .iter()
            .map(|p| p.value())
            .collect()
    }

    #[test]
    fn pure_outgoing_matches_fig2() {
        // paper: 1.725 / 1.725 and 2.61 / 2.61 / 2.61 (model: 2.5875, −0.9%)
        let p2 = penalties(2);
        assert!(p2.iter().all(|&p| (p - 1.725).abs() < 1e-9), "{p2:?}");
        let p3 = penalties(3);
        assert!(p3.iter().all(|&p| (p - 2.5875).abs() < 1e-9), "{p3:?}");
        for (&got, want) in p3.iter().zip([2.61, 2.61, 2.61]) {
            assert!((got - want).abs() / want < 0.015);
        }
    }

    #[test]
    fn one_opposing_flow_is_tolerated() {
        // scheme 4: a,b,c unchanged (2.61 measured), d = 1.14 measured.
        let p = penalties(4);
        assert!((p[0] - 2.5875).abs() < 1e-9, "a unchanged: {p:?}");
        // our d: pi = 1, po = 1; rx_dx = 1 + 0.14·(3−2) = 1.14 → p = 1.14
        assert!((p[3] - 1.14).abs() < 1e-9, "d: {}", p[3]);
    }

    #[test]
    fn scheme5_duplex_pressure() {
        // measured: a,b,c = 3.66 (sim 3.44, −6%), d,e = 2.035 (sim 1.97).
        let p = penalties(5);
        let a = p[0];
        let d = p[3];
        assert!((a - 2.5875 * 1.33).abs() < 1e-9, "a: {a}");
        assert!((a - 3.66).abs() / 3.66 < 0.07);
        assert!((d - 1.725 * 1.14).abs() < 1e-9, "d: {d}");
        assert!((d - 2.035).abs() / 2.035 < 0.05);
    }

    #[test]
    fn scheme6_duplex_pressure() {
        // measured: a,b,c = 3.935 (model 4.30, +9%); d,e measured 1.995 but
        // the model answers 3β·1.14 = 2.95 — the paper's scheme-6 incoming
        // row is internally inconsistent (three concurrent incoming flows
        // cannot all beat 2β; its own f = 1.01 shows the flows did not
        // fully overlap). Documented as a known deviation (see the `ext_infiniband` report).
        let p = penalties(6);
        assert!((p[0] - 2.5875 * 1.66).abs() < 1e-9);
        assert!((p[0] - 3.935).abs() / 3.935 < 0.10);
        assert!((p[3] - 2.5875 * 1.14).abs() < 1e-9);
    }

    #[test]
    fn single_comm_penalty_one() {
        assert_eq!(penalties(1), vec![1.0]);
    }

    #[test]
    fn patch_reuses_unaffected_penalties_verbatim() {
        // An arrival at nodes {0,3} cannot reach the {5,6,7} island, even
        // through the duplex-coupling terms. Poisoned previous penalties on
        // the island must survive the patch verbatim.
        let model = InfinibandModel::default();
        let prev = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(5u32, 6u32, 10),
            Communication::new(5u32, 7u32, 10),
        ];
        let mut prev_pens = model.penalties(&prev);
        prev_pens[1] = Penalty::new(9.0);
        let mut comms = prev.clone();
        comms.push(Communication::new(0u32, 3u32, 10));
        let patched = model.penalties_after_change(
            &comms,
            crate::model::PopulationDelta::Arrived(vec![3]),
            Some((&prev, &prev_pens)),
        );
        assert_eq!(patched[1].value(), 9.0, "the island must be reused");
        assert_eq!(patched[0], model.penalties(&comms)[0]);
    }

    #[test]
    fn patch_tracks_duplex_reach() {
        // d(1→0) opposes a(0→1): its arrival changes a's tx_dx term even
        // though a's src/dst groups are otherwise untouched — the patch
        // must re-evaluate a, not reuse it.
        let model = InfinibandModel::default();
        let prev = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(0u32, 2u32, 10),
            Communication::new(0u32, 3u32, 10),
        ];
        let prev_pens = model.penalties(&prev);
        let mut comms = prev.clone();
        comms.push(Communication::new(1u32, 0u32, 10));
        comms.push(Communication::new(2u32, 0u32, 10));
        let patched = model.penalties_after_change(
            &comms,
            crate::model::PopulationDelta::Arrived(vec![3, 4]),
            Some((&prev, &prev_pens)),
        );
        let full = model.penalties(&comms);
        assert_eq!(patched, full);
        // sanity: the duplex pressure really did change a's penalty
        assert!(full[0].value() > prev_pens[0].value());
    }

    #[test]
    #[should_panic(expected = "delta_tx")]
    fn rejects_negative_delta() {
        InfinibandModel::new(0.8, -0.1, 0.1);
    }
}
