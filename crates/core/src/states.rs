//! Communication state-set enumeration (§V.B).
//!
//! The Myrinet model considers each communication to be either in state
//! *send* or *wait*, under one rule: **when a communication is in state
//! "send", every communication with the same source node or the same
//! destination node is in state "wait"**. A *state set* is a consistent,
//! complete assignment — i.e. a set of simultaneously sending
//! communications to which no further communication can be added: a
//! **maximal independent set** of the strict conflict graph.
//!
//! Enumeration is Bron–Kerbosch with pivoting over the *compatibility*
//! graph (the complement of the conflict graph), run per connected
//! component of the conflict graph. Counts multiply across components, and
//! the model's penalty `S/κ` is invariant under that factorisation, so
//! per-component enumeration gives identical penalties while avoiding the
//! cross-product blow-up.

use netbw_graph::conflict::ConflictGraph;
use netbw_graph::BitSet;

/// Cap on enumerated state sets; enumeration is exponential in the worst
/// case and the model is meant for scheme-sized graphs.
pub const DEFAULT_STATE_SET_BUDGET: usize = 200_000;

/// Error: the enumeration exceeded its state-set budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The budget that was exceeded.
    pub budget: usize,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "state-set enumeration exceeded budget of {} sets",
            self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// The result of enumerating the state sets of one conflict-graph
/// component (or of a whole graph).
#[derive(Debug, Clone)]
pub struct StateSetEnumeration {
    /// The member vertices, in the indexing of the conflict graph.
    pub vertices: Vec<usize>,
    /// Each state set, as a bitset over conflict-graph indices.
    pub sets: Vec<BitSet>,
}

impl StateSetEnumeration {
    /// Number of state sets `S`.
    pub fn count(&self) -> usize {
        self.sets.len()
    }

    /// Emission coefficient σ(v): number of sets in which `v` sends.
    pub fn emission(&self, v: usize) -> usize {
        self.sets.iter().filter(|s| s.contains(v)).count()
    }
}

/// Enumerates the maximal independent sets of an entire conflict graph,
/// *globally* (cross product over components). Exponential in the number
/// of components; prefer [`enumerate_components`] for model evaluation.
/// Kept for the `ABL-2` ablation and for printing Fig. 5.
pub fn enumerate_global(
    graph: &ConflictGraph,
    budget: usize,
) -> Result<StateSetEnumeration, BudgetExceeded> {
    let vertices: Vec<usize> = (0..graph.len()).collect();
    let sets = bron_kerbosch(graph, &vertices, budget, true)?;
    Ok(StateSetEnumeration { vertices, sets })
}

/// Enumerates state sets per connected component of the conflict graph.
pub fn enumerate_components(
    graph: &ConflictGraph,
    budget: usize,
) -> Result<Vec<StateSetEnumeration>, BudgetExceeded> {
    graph
        .components()
        .into_iter()
        .map(|vertices| {
            let sets = bron_kerbosch(graph, &vertices, budget, true)?;
            Ok(StateSetEnumeration { vertices, sets })
        })
        .collect()
}

/// Counting-only enumeration result for one component: the state-set count
/// and per-vertex emission coefficients, without materialising the sets.
#[derive(Debug, Clone)]
pub struct StateSetCounts {
    /// The member vertices, in conflict-graph indexing.
    pub vertices: Vec<usize>,
    /// Number of state sets `S` in this component.
    pub count: u64,
    /// Emission coefficient σ per member, aligned with `vertices`.
    pub emission: Vec<u64>,
}

/// Counts state sets and emission coefficients per component without
/// storing the sets — the memory-lean path used by the Myrinet model when
/// only penalties are needed (set *contents* are only required to print
/// Fig. 5).
pub fn count_components(
    graph: &ConflictGraph,
    budget: usize,
) -> Result<Vec<StateSetCounts>, BudgetExceeded> {
    graph
        .components()
        .into_iter()
        .map(|vertices| {
            let cap = graph.len();
            let member: BitSet = vertices.iter().copied().collect();
            let compat: Vec<BitSet> = (0..cap)
                .map(|v| {
                    if !member.contains(v) {
                        return BitSet::with_capacity(cap);
                    }
                    let mut c = member.clone();
                    c.remove(v);
                    c.difference_with(graph.neighbours(v));
                    c
                })
                .collect();
            let mut count = 0u64;
            let mut emission = vec![0u64; cap];
            let r = BitSet::with_capacity(cap);
            let p = member.clone();
            let x = BitSet::with_capacity(cap);
            bk_count(&compat, r, p, x, &mut count, &mut emission, budget)?;
            let emission = vertices.iter().map(|&v| emission[v]).collect();
            Ok(StateSetCounts {
                vertices,
                count,
                emission,
            })
        })
        .collect()
}

fn bk_count(
    compat: &[BitSet],
    r: BitSet,
    mut p: BitSet,
    mut x: BitSet,
    count: &mut u64,
    emission: &mut [u64],
    budget: usize,
) -> Result<(), BudgetExceeded> {
    if p.is_empty() && x.is_empty() {
        if *count >= budget as u64 {
            return Err(BudgetExceeded { budget });
        }
        *count += 1;
        for v in r.iter() {
            emission[v] += 1;
        }
        return Ok(());
    }
    let pivot_vertex = p
        .iter()
        .chain(x.iter())
        .max_by_key(|&u| compat[u].intersection_len(&p));
    let candidates: Vec<usize> = match pivot_vertex {
        Some(u) => {
            let mut c = p.clone();
            c.difference_with(&compat[u]);
            c.iter().collect()
        }
        None => p.iter().collect(),
    };
    for v in candidates {
        let mut r2 = r.clone();
        r2.insert(v);
        let mut p2 = p.clone();
        p2.intersect_with(&compat[v]);
        let mut x2 = x.clone();
        x2.intersect_with(&compat[v]);
        bk_count(compat, r2, p2, x2, count, emission, budget)?;
        p.remove(v);
        x.insert(v);
    }
    Ok(())
}

/// Naive enumeration without pivoting — reference implementation for tests
/// and the `ABL-2` benchmark.
pub fn enumerate_components_naive(
    graph: &ConflictGraph,
    budget: usize,
) -> Result<Vec<StateSetEnumeration>, BudgetExceeded> {
    graph
        .components()
        .into_iter()
        .map(|vertices| {
            let sets = bron_kerbosch(graph, &vertices, budget, false)?;
            Ok(StateSetEnumeration { vertices, sets })
        })
        .collect()
}

/// Bron–Kerbosch over the complement ("compatibility") graph restricted to
/// `vertices`: maximal independent sets of the conflict graph are maximal
/// cliques of its complement.
fn bron_kerbosch(
    graph: &ConflictGraph,
    vertices: &[usize],
    budget: usize,
    pivot: bool,
) -> Result<Vec<BitSet>, BudgetExceeded> {
    let cap = graph.len();
    // Compatibility adjacency restricted to this component.
    let member: BitSet = vertices.iter().copied().collect();
    let compat: Vec<BitSet> = (0..cap)
        .map(|v| {
            if !member.contains(v) {
                return BitSet::with_capacity(cap);
            }
            let mut c = member.clone();
            c.remove(v);
            c.difference_with(graph.neighbours(v));
            c
        })
        .collect();

    let mut out = Vec::new();
    let r = BitSet::with_capacity(cap);
    let p = member.clone();
    let x = BitSet::with_capacity(cap);
    if pivot {
        bk_rec(&compat, r, p, x, &mut out, budget)?;
    } else {
        bk_rec_naive(&compat, r, p, x, &mut out, budget)?;
    }
    Ok(out)
}

fn bk_rec(
    compat: &[BitSet],
    r: BitSet,
    mut p: BitSet,
    mut x: BitSet,
    out: &mut Vec<BitSet>,
    budget: usize,
) -> Result<(), BudgetExceeded> {
    if p.is_empty() && x.is_empty() {
        if out.len() >= budget {
            return Err(BudgetExceeded { budget });
        }
        out.push(r);
        return Ok(());
    }
    // Pivot: vertex of P ∪ X with most compatibility neighbours in P.
    let candidates: Vec<usize> = {
        let pivot_vertex = p
            .iter()
            .chain(x.iter())
            .max_by_key(|&u| compat[u].intersection_len(&p));
        match pivot_vertex {
            Some(u) => {
                let mut c = p.clone();
                c.difference_with(&compat[u]);
                c.iter().collect()
            }
            None => p.iter().collect(),
        }
    };
    for v in candidates {
        let mut r2 = r.clone();
        r2.insert(v);
        let mut p2 = p.clone();
        p2.intersect_with(&compat[v]);
        let mut x2 = x.clone();
        x2.intersect_with(&compat[v]);
        bk_rec(compat, r2, p2, x2, out, budget)?;
        p.remove(v);
        x.insert(v);
    }
    Ok(())
}

// The non-pivoting variant is selected by calling bron_kerbosch with
// pivot=false; route through a tiny wrapper to keep one recursion body.
#[allow(clippy::too_many_arguments)]
fn bk_rec_naive(
    compat: &[BitSet],
    r: BitSet,
    mut p: BitSet,
    mut x: BitSet,
    out: &mut Vec<BitSet>,
    budget: usize,
) -> Result<(), BudgetExceeded> {
    if p.is_empty() && x.is_empty() {
        if out.len() >= budget {
            return Err(BudgetExceeded { budget });
        }
        out.push(r);
        return Ok(());
    }
    let candidates: Vec<usize> = p.iter().collect();
    for v in candidates {
        let mut r2 = r.clone();
        r2.insert(v);
        let mut p2 = p.clone();
        p2.intersect_with(&compat[v]);
        let mut x2 = x.clone();
        x2.intersect_with(&compat[v]);
        bk_rec_naive(compat, r2, p2, x2, out, budget)?;
        p.remove(v);
        x.insert(v);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_graph::conflict::ConflictRule;
    use netbw_graph::{schemes, Communication};

    fn enumerate(comms: &[Communication]) -> StateSetEnumeration {
        let cg = ConflictGraph::build(comms, ConflictRule::Strict);
        enumerate_global(&cg, DEFAULT_STATE_SET_BUDGET).unwrap()
    }

    #[test]
    fn fig5_has_exactly_five_state_sets() {
        let g = schemes::fig5();
        let e = enumerate(g.comms());
        assert_eq!(e.count(), 5);
        // emission sums from the Fig. 6 table
        let sums: Vec<usize> = (0..6).map(|v| e.emission(v)).collect();
        assert_eq!(sums, vec![1, 2, 2, 2, 2, 3]);
    }

    #[test]
    fn fig5_sets_are_maximal_independent() {
        let g = schemes::fig5();
        let cg = ConflictGraph::build(g.comms(), ConflictRule::Strict);
        let e = enumerate_global(&cg, DEFAULT_STATE_SET_BUDGET).unwrap();
        for s in &e.sets {
            assert!(cg.is_maximal_independent(s));
        }
    }

    #[test]
    fn fig5_sets_match_hand_enumeration() {
        // {a,f} {b,e} {c,e} {b,d,f} {c,d,f} with a..f = 0..5
        let g = schemes::fig5();
        let e = enumerate(g.comms());
        let mut got: Vec<Vec<usize>> = e.sets.iter().map(|s| s.iter().collect()).collect();
        got.sort();
        let mut want = vec![
            vec![0, 5],
            vec![1, 4],
            vec![2, 4],
            vec![1, 3, 5],
            vec![2, 3, 5],
        ];
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn per_component_counts_multiply_to_global() {
        let g = schemes::mk1();
        let cg = ConflictGraph::build(g.comms(), ConflictRule::Strict);
        let global = enumerate_global(&cg, DEFAULT_STATE_SET_BUDGET).unwrap();
        let comps = enumerate_components(&cg, DEFAULT_STATE_SET_BUDGET).unwrap();
        let product: usize = comps.iter().map(StateSetEnumeration::count).product();
        assert_eq!(global.count(), product);
        // MK1 components: path(4) → 3 sets, pair → 2, isolated → 1.
        let mut counts: Vec<usize> = comps.iter().map(StateSetEnumeration::count).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2, 3]);
    }

    #[test]
    fn naive_and_pivoting_agree() {
        for seed in 0..8 {
            let g = schemes::random(6, 8, 100, seed);
            let cg = ConflictGraph::build(g.comms(), ConflictRule::Strict);
            let a = enumerate_components(&cg, DEFAULT_STATE_SET_BUDGET).unwrap();
            let b = enumerate_components_naive(&cg, DEFAULT_STATE_SET_BUDGET).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.count(), y.count(), "seed {seed}");
                let mut sx: Vec<Vec<usize>> = x.sets.iter().map(|s| s.iter().collect()).collect();
                let mut sy: Vec<Vec<usize>> = y.sets.iter().map(|s| s.iter().collect()).collect();
                sx.sort();
                sy.sort();
                assert_eq!(sx, sy, "seed {seed}");
            }
        }
    }

    #[test]
    fn single_comm_has_one_singleton_set() {
        let comms = vec![Communication::new(0u32, 1u32, 1)];
        let e = enumerate(&comms);
        assert_eq!(e.count(), 1);
        assert_eq!(e.emission(0), 1);
    }

    #[test]
    fn empty_graph_has_one_empty_enumeration() {
        let cg = ConflictGraph::build(&[], ConflictRule::Strict);
        let e = enumerate_global(&cg, 10).unwrap();
        // no vertices: BK immediately emits the empty set
        assert_eq!(e.count(), 1);
        assert!(e.sets[0].is_empty());
        assert!(enumerate_components(&cg, 10).unwrap().is_empty());
    }

    #[test]
    fn budget_is_enforced() {
        // outgoing star from many sources to many sinks: K(m) conflict-free
        // pairs explode; use an independent collection (no conflicts):
        // n isolated comms → exactly 1 maximal set globally, so use
        // a matching of conflicting pairs instead: n/2 components of 2
        // comms each (2 sets each) → 2^(n/2) global sets.
        let mut comms = Vec::new();
        for k in 0..16u32 {
            // pair k: two comms sharing a source
            comms.push(Communication::new(100 + k, 2 * k, 1));
            comms.push(Communication::new(100 + k, 2 * k + 1, 1));
        }
        let cg = ConflictGraph::build(&comms, ConflictRule::Strict);
        let err = enumerate_global(&cg, 1000).unwrap_err();
        assert_eq!(err.budget, 1000);
        // per-component stays trivially cheap
        let comps = enumerate_components(&cg, 1000).unwrap();
        assert_eq!(comps.len(), 16);
        assert!(comps.iter().all(|c| c.count() == 2));
    }

    #[test]
    fn counting_agrees_with_enumeration() {
        for seed in 0..10 {
            let g = schemes::random(6, 8, 100, seed);
            let cg = ConflictGraph::build(g.comms(), ConflictRule::Strict);
            let full = enumerate_components(&cg, DEFAULT_STATE_SET_BUDGET).unwrap();
            let counted = count_components(&cg, DEFAULT_STATE_SET_BUDGET).unwrap();
            assert_eq!(full.len(), counted.len());
            for (e, c) in full.iter().zip(&counted) {
                assert_eq!(e.vertices, c.vertices, "seed {seed}");
                assert_eq!(e.count() as u64, c.count, "seed {seed}");
                for (i, &v) in c.vertices.iter().enumerate() {
                    assert_eq!(e.emission(v) as u64, c.emission[i], "seed {seed} v{v}");
                }
            }
        }
    }

    #[test]
    fn counting_respects_budget() {
        let g = schemes::fig5();
        let cg = ConflictGraph::build(g.comms(), ConflictRule::Strict);
        assert!(count_components(&cg, 3).is_err());
        assert!(count_components(&cg, 5).is_ok());
    }

    #[test]
    fn sets_cover_every_vertex_at_least_once() {
        // every comm must send in at least one state set (σ ≥ 1): otherwise
        // the penalty would be infinite.
        for seed in 0..6 {
            let g = schemes::random(5, 7, 100, seed);
            let cg = ConflictGraph::build(g.comms(), ConflictRule::Strict);
            for e in enumerate_components(&cg, DEFAULT_STATE_SET_BUDGET).unwrap() {
                for &v in &e.vertices {
                    assert!(e.emission(v) >= 1, "seed {seed} vertex {v}");
                }
            }
        }
    }
}
