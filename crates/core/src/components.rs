//! Conflict-component tracking over communication endpoints.
//!
//! Every penalty model in this crate is *component-local*: a flow's
//! penalty depends only on the flows it transitively shares an endpoint
//! with (GigE and InfiniBand read per-endpoint degree multisets, Myrinet
//! enumerates state sets per union–find conflict component, and the
//! baselines count direct conflicts). Two flows in disjoint connected
//! components of the shared-endpoint graph therefore never influence each
//! other's penalty — which is the partitioning invariant the sharded fluid
//! engine (`netbw-fluid`'s `with_sharded` mode) builds on: it simulates
//! each component on its own timeline and penalty cache.
//!
//! [`ComponentTracker`] maintains those connected components incrementally
//! in both directions. Arrivals union endpoints as a classic union–find
//! ([`ComponentTracker::insert`], reporting [`ComponentChange`]); departures
//! refine the partition back apart ([`ComponentTracker::remove`], reporting
//! [`ComponentRemoval`]). Refinement is exact but *bounded*: the tracker
//! keeps per-edge flow refcounts and per-node incident-flow counts, so most
//! departures resolve in O(1) (the edge still carries flows, or a leaf
//! endpoint drained out), and only a departure that actually disconnects its
//! endpoints pays a sweep over the departed flow's component — never the
//! whole graph. A union of true components is still a safe partition cell
//! (penalties computed over a union match the per-component answers
//! bit-for-bit, by the same locality), so a caller may *defer* acting on
//! splits — splitting is a performance refinement, never a correctness
//! requirement — but the tracker itself always reports the true partition.

use netbw_graph::NodeId;
use std::collections::HashMap;

/// Dense index of an interned endpoint inside a [`ComponentTracker`].
///
/// Component roots are identified by the index of their representative
/// node; a root index stays the canonical name of its component until the
/// component is absorbed into another (reported by
/// [`ComponentChange::Bridged`]), its root node departs (reported by the
/// `root` field of [`ComponentRemoval::Shrunk`]), or the component splits
/// (the splinter gets a fresh root, [`ComponentRemoval::Split`]).
pub type ComponentRoot = u32;

/// What one [`ComponentTracker::insert`] did to the component structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComponentChange {
    /// Both endpoints were new: a fresh component was created.
    Created {
        /// The new component's root.
        root: ComponentRoot,
    },
    /// The flow landed inside one existing component (possibly growing it
    /// by a new endpoint). The component's root is unchanged.
    Joined {
        /// The (pre-existing) root of the component joined.
        root: ComponentRoot,
    },
    /// The flow's endpoints lay in two distinct components, which are now
    /// one: `absorbed` is no longer a root, `root` names the union.
    Bridged {
        /// The surviving component's root.
        root: ComponentRoot,
        /// The root that was absorbed — not a root again until the
        /// partition refines back apart and re-seats it.
        absorbed: ComponentRoot,
    },
}

impl ComponentChange {
    /// The root of the component the inserted flow ended up in.
    pub fn root(&self) -> ComponentRoot {
        match *self {
            ComponentChange::Created { root }
            | ComponentChange::Joined { root }
            | ComponentChange::Bridged { root, .. } => root,
        }
    }
}

/// What one [`ComponentTracker::remove`] did to the component structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComponentRemoval {
    /// The component stays connected. `root` is its (possibly re-seated)
    /// root after the removal: it differs from `old_root` only when the
    /// old root node itself drained out of the population.
    Shrunk {
        /// The component's root before the removal.
        old_root: ComponentRoot,
        /// The component's root after the removal.
        root: ComponentRoot,
    },
    /// The departed flow was the component's last: both endpoints drained
    /// out and the component is gone.
    Drained {
        /// The root the now-empty component had.
        root: ComponentRoot,
    },
    /// The departure disconnected the component into exactly two parts
    /// (removing one flow can never make more). The part containing the
    /// old root keeps it as `root`; the splinter is re-rooted at
    /// `split_root`, a fresh root callers have never seen for a live
    /// component.
    Split {
        /// The kept part's root (same root the component had before).
        root: ComponentRoot,
        /// The splinter's new root.
        split_root: ComponentRoot,
    },
}

impl ComponentRemoval {
    /// The root of the component the departed flow was in, as named
    /// *before* the removal.
    pub fn old_root(&self) -> ComponentRoot {
        match *self {
            ComponentRemoval::Shrunk { old_root, .. } => old_root,
            ComponentRemoval::Drained { root } | ComponentRemoval::Split { root, .. } => root,
        }
    }
}

/// Incremental connected components of the shared-endpoint graph: a
/// union–find over node ids that also refines back apart on departures.
///
/// Inserting a flow unions its two endpoints and reports what changed
/// ([`ComponentChange`]); removing a previously inserted flow reports
/// whether its component shrank, drained, or split ([`ComponentRemoval`]).
/// An existing component's root is stable until the component is absorbed,
/// its root node departs, or it splits — each transition is reported, which
/// is what lets callers key side tables (the sharded engine's shard map)
/// by root. Node slots freed by departures are recycled for later
/// endpoints, so a long-lived churning population keeps the tracker's
/// footprint proportional to the *live* graph.
#[derive(Debug, Default, Clone)]
pub struct ComponentTracker {
    index: HashMap<NodeId, u32>,
    nodes: Vec<NodeId>,
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Per node: `(neighbor, live-flow count)` for every edge with at
    /// least one live flow. Self-loops appear once, on their own node.
    adj: Vec<Vec<(u32, u32)>>,
    /// Per node: how many live flows touch it (a self-loop counts once).
    incident: Vec<u32>,
    /// Retired node slots available for re-interning.
    free: Vec<u32>,
    components: usize,
    // Sweep scratch: generation marks avoid clearing a visited bitmap.
    mark: Vec<u32>,
    mark_gen: u32,
    stack: Vec<u32>,
    visited: Vec<u32>,
}

impl ComponentTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        ComponentTracker::default()
    }

    /// Number of distinct components.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Number of live interned endpoints.
    pub fn node_count(&self) -> usize {
        self.parent.len() - self.free.len()
    }

    /// Forgets everything while keeping allocations warm.
    pub fn clear(&mut self) {
        self.index.clear();
        self.nodes.clear();
        self.parent.clear();
        self.rank.clear();
        self.adj.clear();
        self.incident.clear();
        self.free.clear();
        self.components = 0;
        self.mark.clear();
        self.mark_gen = 0;
    }

    /// Makes `target` an exact copy of `self` while reusing `target`'s
    /// allocations (the allocation-preserving counterpart of `clone`).
    /// Sweep scratch is copied too, so a forked tracker is bitwise
    /// indistinguishable from a cloned one.
    pub fn fork_into(&self, target: &mut Self) {
        target.index.clone_from(&self.index);
        target.nodes.clone_from(&self.nodes);
        target.parent.clone_from(&self.parent);
        target.rank.clone_from(&self.rank);
        target.adj.clone_from(&self.adj);
        target.incident.clone_from(&self.incident);
        target.free.clone_from(&self.free);
        target.components = self.components;
        target.mark.clone_from(&self.mark);
        target.mark_gen = self.mark_gen;
        target.stack.clone_from(&self.stack);
        target.visited.clone_from(&self.visited);
    }

    /// The root of the component containing `node`, or `None` if the node
    /// is not in the live population.
    pub fn find(&mut self, node: NodeId) -> Option<ComponentRoot> {
        let idx = *self.index.get(&node)?;
        Some(self.find_idx(idx))
    }

    /// Unions the components of `a` and `b` (interning either endpoint as
    /// needed) and reports what changed. Inserting an intra-node flow
    /// (`a == b`) is fine: the node forms (or keeps) its own component.
    pub fn insert(&mut self, a: NodeId, b: NodeId) -> ComponentChange {
        let (ia, a_new) = self.intern(a);
        if a == b {
            self.add_edge(ia, ia);
            self.incident[ia as usize] += 1;
            return if a_new {
                self.components += 1;
                ComponentChange::Created { root: ia }
            } else {
                ComponentChange::Joined {
                    root: self.find_idx(ia),
                }
            };
        }
        let (ib, b_new) = self.intern(b);
        self.add_edge(ia, ib);
        self.incident[ia as usize] += 1;
        self.incident[ib as usize] += 1;
        match (a_new, b_new) {
            (true, true) => {
                self.components += 1;
                let (root, _) = self.union(ia, ib);
                ComponentChange::Created { root }
            }
            (false, true) => {
                let root = self.find_idx(ia);
                // The fresh singleton attaches under the existing root
                // (union prefers its first argument on rank ties), so the
                // component's canonical root never moves on a join.
                let (root, _) = self.union(root, ib);
                ComponentChange::Joined { root }
            }
            (true, false) => {
                let root = self.find_idx(ib);
                let (root, _) = self.union(root, ia);
                ComponentChange::Joined { root }
            }
            (false, false) => {
                let ra = self.find_idx(ia);
                let rb = self.find_idx(ib);
                if ra == rb {
                    return ComponentChange::Joined { root: ra };
                }
                self.components -= 1;
                let (root, absorbed) = self.union(ra, rb);
                ComponentChange::Bridged { root, absorbed }
            }
        }
    }

    /// Removes one previously [`insert`](Self::insert)ed flow between `a`
    /// and `b` and reports what happened to its component. The work is
    /// bounded by the departed flow's component: O(1) while the edge still
    /// carries other flows or a drained endpoint was a leaf of the
    /// union–find root, and one sweep of the component's live edges when
    /// connectivity actually has to be re-derived.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, may corrupt counts in release) if no
    /// matching flow is live — every `remove` must pair with an earlier
    /// `insert`.
    pub fn remove(&mut self, a: NodeId, b: NodeId) -> ComponentRemoval {
        let ia = *self
            .index
            .get(&a)
            .expect("removing a flow whose endpoint was never inserted");
        let ib = *self
            .index
            .get(&b)
            .expect("removing a flow whose endpoint was never inserted");
        let old_root = self.find_idx(ia);
        debug_assert_eq!(
            old_root,
            self.find_idx(ib),
            "a flow's endpoints must share a component"
        );
        let edge_gone = self.drop_edge(ia, ib);
        self.incident[ia as usize] -= 1;
        if ia != ib {
            self.incident[ib as usize] -= 1;
        }
        if !edge_gone {
            // Other live flows still run over this exact edge: nothing can
            // have disconnected, no endpoint can have drained.
            return ComponentRemoval::Shrunk {
                old_root,
                root: old_root,
            };
        }
        let a_iso = self.incident[ia as usize] == 0;
        let b_iso = self.incident[ib as usize] == 0;
        if ia == ib {
            // Self-loop: one endpoint, no connectivity to lose.
            return if a_iso {
                self.retire(ia);
                self.components -= 1;
                ComponentRemoval::Drained { root: old_root }
            } else {
                ComponentRemoval::Shrunk {
                    old_root,
                    root: old_root,
                }
            };
        }
        match (a_iso, b_iso) {
            (true, true) => {
                // Both endpoints only carried this flow, so the component
                // was exactly {a, b} and is now gone.
                self.retire(ia);
                self.retire(ib);
                self.components -= 1;
                ComponentRemoval::Drained { root: old_root }
            }
            drained @ (true, false) | drained @ (false, true) => {
                // One endpoint drained out. It was a leaf (its only edge
                // was the departed one), so no path ran *through* it and
                // the survivors are still connected — but its slot dies,
                // and arbitrary union–find parent chains may pass through
                // dead slots, so re-root the survivors explicitly.
                let (dead, seed) = if drained.0 { (ia, ib) } else { (ib, ia) };
                self.retire(dead);
                let root = self.reroot(seed, old_root);
                ComponentRemoval::Shrunk { old_root, root }
            }
            (false, false) => {
                // The edge is gone but both endpoints still carry flows:
                // the only way to know whether the component held together
                // is to look — one sweep, bounded by the component.
                if self.sweep(ia, Some(ib)) {
                    return ComponentRemoval::Shrunk {
                        old_root,
                        root: old_root,
                    };
                }
                // Split. The sweep left `a`'s part in the visited set;
                // re-root it, then sweep and re-root `b`'s part. Exactly
                // one of the two parts contains the old root node and
                // keeps its name.
                let a_root = self.reroot_visited(old_root, ia);
                self.sweep(ib, None);
                let b_root = self.reroot_visited(old_root, ib);
                self.components += 1;
                if a_root == old_root {
                    ComponentRemoval::Split {
                        root: old_root,
                        split_root: b_root,
                    }
                } else {
                    debug_assert_eq!(b_root, old_root);
                    ComponentRemoval::Split {
                        root: old_root,
                        split_root: a_root,
                    }
                }
            }
        }
    }

    fn intern(&mut self, node: NodeId) -> (u32, bool) {
        if let Some(&idx) = self.index.get(&node) {
            return (idx, false);
        }
        let idx = if let Some(idx) = self.free.pop() {
            let i = idx as usize;
            self.nodes[i] = node;
            self.parent[i] = idx;
            self.rank[i] = 0;
            debug_assert!(self.adj[i].is_empty());
            debug_assert_eq!(self.incident[i], 0);
            idx
        } else {
            let idx = u32::try_from(self.parent.len()).expect("tracker capacity exceeds u32");
            self.nodes.push(node);
            self.parent.push(idx);
            self.rank.push(0);
            self.adj.push(Vec::new());
            self.incident.push(0);
            self.mark.push(0);
            idx
        };
        self.index.insert(node, idx);
        (idx, true)
    }

    /// Retires a drained node's slot for re-interning. Callers must have
    /// re-rooted (or drained) its component: live parent chains never pass
    /// through retired slots.
    fn retire(&mut self, idx: u32) {
        let i = idx as usize;
        debug_assert_eq!(self.incident[i], 0);
        self.index.remove(&self.nodes[i]);
        self.adj[i].clear();
        self.parent[i] = idx;
        self.rank[i] = 0;
        self.free.push(idx);
    }

    fn add_edge(&mut self, ia: u32, ib: u32) {
        fn bump(list: &mut Vec<(u32, u32)>, to: u32) {
            if let Some(e) = list.iter_mut().find(|e| e.0 == to) {
                e.1 += 1;
            } else {
                list.push((to, 1));
            }
        }
        bump(&mut self.adj[ia as usize], ib);
        if ia != ib {
            bump(&mut self.adj[ib as usize], ia);
        }
    }

    /// Drops one flow from the `(ia, ib)` edge, returning whether the edge
    /// carried its last flow and is gone from the adjacency.
    fn drop_edge(&mut self, ia: u32, ib: u32) -> bool {
        fn decr(list: &mut Vec<(u32, u32)>, to: u32) -> bool {
            let pos = list
                .iter()
                .position(|e| e.0 == to)
                .expect("removing a flow over an edge that carries none");
            list[pos].1 -= 1;
            if list[pos].1 == 0 {
                list.swap_remove(pos);
                true
            } else {
                false
            }
        }
        let gone = decr(&mut self.adj[ia as usize], ib);
        if ia != ib {
            let gone_b = decr(&mut self.adj[ib as usize], ia);
            debug_assert_eq!(gone, gone_b, "adjacency refcounts out of sync");
        }
        gone
    }

    /// Sweeps (BFS) the live-edge graph from `seed`. Returns `true` as
    /// soon as `target` is reached; otherwise visits the whole component,
    /// leaving it in `self.visited`, and returns `false`.
    fn sweep(&mut self, seed: u32, target: Option<u32>) -> bool {
        self.mark_gen = self.mark_gen.wrapping_add(1);
        if self.mark_gen == 0 {
            self.mark.fill(0);
            self.mark_gen = 1;
        }
        let gen = self.mark_gen;
        let mut stack = std::mem::take(&mut self.stack);
        let mut visited = std::mem::take(&mut self.visited);
        stack.clear();
        visited.clear();
        self.mark[seed as usize] = gen;
        stack.push(seed);
        let mut hit = false;
        'bfs: while let Some(n) = stack.pop() {
            visited.push(n);
            for &(m, _) in &self.adj[n as usize] {
                if self.mark[m as usize] != gen {
                    self.mark[m as usize] = gen;
                    if Some(m) == target {
                        hit = true;
                        break 'bfs;
                    }
                    stack.push(m);
                }
            }
        }
        self.stack = stack;
        self.visited = visited;
        hit
    }

    /// Re-roots the nodes in `self.visited` (one whole component part):
    /// the root is `preferred` if it is among them, else `seed`. Writing
    /// every parent directly keeps chains one hop long and — crucially —
    /// off any slot outside the part (dead or split away).
    fn reroot_visited(&mut self, preferred: u32, seed: u32) -> u32 {
        let root = if self.visited.contains(&preferred) {
            preferred
        } else {
            seed
        };
        for &n in &self.visited {
            self.parent[n as usize] = root;
            self.rank[n as usize] = 0;
        }
        self.rank[root as usize] = 1;
        root
    }

    /// Sweeps the component containing `seed` and re-roots it at
    /// `preferred` (if live and in it) or `seed`.
    fn reroot(&mut self, seed: u32, preferred: u32) -> u32 {
        self.sweep(seed, None);
        self.reroot_visited(preferred, seed)
    }

    fn find_idx(&mut self, mut idx: u32) -> u32 {
        // Path halving keeps finds amortized near-constant without a
        // second pass.
        while self.parent[idx as usize] != idx {
            let grandparent = self.parent[self.parent[idx as usize] as usize];
            self.parent[idx as usize] = grandparent;
            idx = grandparent;
        }
        idx
    }

    /// Unions two roots, returning `(winner, loser)`. Rank ties go to the
    /// first argument — the invariant joins rely on to keep existing roots
    /// canonical.
    fn union(&mut self, ra: u32, rb: u32) -> (u32, u32) {
        debug_assert_ne!(ra, rb);
        let (winner, loser) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[loser as usize] = winner;
        if self.rank[winner as usize] == self.rank[loser as usize] {
            self.rank[winner as usize] += 1;
        }
        (winner, loser)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn disjoint_flows_create_distinct_components() {
        let mut t = ComponentTracker::new();
        let a = t.insert(n(0), n(1));
        let b = t.insert(n(2), n(3));
        assert!(matches!(a, ComponentChange::Created { .. }));
        assert!(matches!(b, ComponentChange::Created { .. }));
        assert_ne!(a.root(), b.root());
        assert_eq!(t.component_count(), 2);
        assert_eq!(t.node_count(), 4);
    }

    #[test]
    fn shared_endpoint_joins_without_moving_the_root() {
        let mut t = ComponentTracker::new();
        let created = t.insert(n(0), n(1));
        // new endpoint 2 attaches to the existing component
        let joined = t.insert(n(0), n(2));
        assert_eq!(
            joined,
            ComponentChange::Joined {
                root: created.root()
            }
        );
        // flow entirely inside the component
        let internal = t.insert(n(1), n(2));
        assert_eq!(
            internal,
            ComponentChange::Joined {
                root: created.root()
            }
        );
        // new source, existing destination: still a join, same root
        let reversed = t.insert(n(3), n(1));
        assert_eq!(
            reversed,
            ComponentChange::Joined {
                root: created.root()
            }
        );
        assert_eq!(t.component_count(), 1);
    }

    #[test]
    fn bridging_reports_winner_and_absorbed() {
        let mut t = ComponentTracker::new();
        let a = t.insert(n(0), n(1)).root();
        let b = t.insert(n(2), n(3)).root();
        let bridged = t.insert(n(1), n(2));
        let ComponentChange::Bridged { root, absorbed } = bridged else {
            panic!("expected a bridge, got {bridged:?}");
        };
        assert!(root == a && absorbed == b || root == b && absorbed == a);
        assert_eq!(t.component_count(), 1);
        // every endpoint now resolves to the surviving root
        for i in 0..4 {
            assert_eq!(t.find(n(i)), Some(root));
        }
        // further flows inside the union are joins on the surviving root
        assert_eq!(t.insert(n(0), n(3)), ComponentChange::Joined { root });
    }

    #[test]
    fn intra_node_flows_form_singleton_components() {
        let mut t = ComponentTracker::new();
        let c = t.insert(n(5), n(5));
        assert!(matches!(c, ComponentChange::Created { .. }));
        assert_eq!(t.component_count(), 1);
        assert_eq!(t.node_count(), 1);
        assert_eq!(
            t.insert(n(5), n(5)),
            ComponentChange::Joined { root: c.root() }
        );
        // the singleton bridges like any other component
        let other = t.insert(n(6), n(7)).root();
        let bridged = t.insert(n(5), n(6));
        assert!(matches!(bridged, ComponentChange::Bridged { .. }));
        assert_eq!(t.find(n(5)), t.find(n(7)));
        let _ = other;
    }

    #[test]
    fn find_misses_unknown_nodes_and_clear_forgets() {
        let mut t = ComponentTracker::new();
        assert_eq!(t.find(n(0)), None);
        t.insert(n(0), n(1));
        assert!(t.find(n(0)).is_some());
        t.clear();
        assert_eq!(t.find(n(0)), None);
        assert_eq!(t.component_count(), 0);
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn chains_of_bridges_keep_one_component() {
        let mut t = ComponentTracker::new();
        for i in 0..10u32 {
            t.insert(n(2 * i), n(2 * i + 1));
        }
        assert_eq!(t.component_count(), 10);
        for i in 0..9u32 {
            let c = t.insert(n(2 * i + 1), n(2 * i + 2));
            assert!(matches!(c, ComponentChange::Bridged { .. }), "{i}: {c:?}");
        }
        assert_eq!(t.component_count(), 1);
        let root = t.find(n(0)).unwrap();
        for i in 0..20u32 {
            assert_eq!(t.find(n(i)), Some(root));
        }
    }

    #[test]
    fn duplicate_flows_keep_the_edge_alive() {
        let mut t = ComponentTracker::new();
        let root = t.insert(n(0), n(1)).root();
        t.insert(n(0), n(1));
        t.insert(n(1), n(0)); // direction does not matter: same edge
                              // two removals leave one live flow on the edge
        for _ in 0..2 {
            assert_eq!(
                t.remove(n(0), n(1)),
                ComponentRemoval::Shrunk {
                    old_root: root,
                    root
                }
            );
            assert_eq!(t.component_count(), 1);
        }
        assert_eq!(t.remove(n(0), n(1)), ComponentRemoval::Drained { root });
        assert_eq!(t.component_count(), 0);
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn leaf_departure_shrinks_without_moving_the_root() {
        let mut t = ComponentTracker::new();
        let root = t.insert(n(0), n(1)).root();
        t.insert(n(1), n(2)); // 2 is a leaf
        let r = t.remove(n(1), n(2));
        assert_eq!(
            r,
            ComponentRemoval::Shrunk {
                old_root: root,
                root
            }
        );
        assert_eq!(t.component_count(), 1);
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.find(n(2)), None, "drained endpoints are forgotten");
        assert_eq!(t.find(n(0)), Some(root));
    }

    #[test]
    fn root_departure_reseats_the_root() {
        let mut t = ComponentTracker::new();
        let old = t.insert(n(0), n(1)).root();
        t.insert(n(1), n(2));
        // drain every flow touching the root node
        let root_node = if old == 0 { n(0) } else { n(1) };
        let other = if old == 0 { n(1) } else { n(0) };
        let r = t.remove(root_node, other);
        let ComponentRemoval::Shrunk { old_root, root } = r else {
            panic!("expected shrink, got {r:?}");
        };
        assert_eq!(old_root, old);
        if root_node == n(0) {
            // node 0 only carried the removed flow: it drained, and if it
            // was the root the root must have moved to a survivor.
            assert_ne!(root, old);
            assert_eq!(t.find(n(1)), Some(root));
            assert_eq!(t.find(n(2)), Some(root));
        }
        assert_eq!(t.component_count(), 1);
    }

    #[test]
    fn cutting_a_chain_splits_into_two_components() {
        let mut t = ComponentTracker::new();
        // path 0-1-2-3
        let root = t.insert(n(0), n(1)).root();
        t.insert(n(1), n(2));
        t.insert(n(2), n(3));
        assert_eq!(t.component_count(), 1);
        let r = t.remove(n(1), n(2));
        let ComponentRemoval::Split {
            root: kept,
            split_root,
        } = r
        else {
            panic!("expected a split, got {r:?}");
        };
        assert_eq!(kept, root);
        assert_ne!(split_root, kept);
        assert_eq!(t.component_count(), 2);
        // endpoints resolve into the two parts, flow-mates together
        assert_eq!(t.find(n(0)), t.find(n(1)));
        assert_eq!(t.find(n(2)), t.find(n(3)));
        assert_ne!(t.find(n(0)), t.find(n(2)));
        let roots = [t.find(n(0)).unwrap(), t.find(n(2)).unwrap()];
        assert!(roots.contains(&kept) && roots.contains(&split_root));
    }

    #[test]
    fn split_after_bridge_round_trips() {
        let mut t = ComponentTracker::new();
        let a = t.insert(n(0), n(1)).root();
        let b = t.insert(n(2), n(3)).root();
        let bridged = t.insert(n(1), n(2));
        assert!(matches!(bridged, ComponentChange::Bridged { .. }));
        let r = t.remove(n(1), n(2));
        let ComponentRemoval::Split { root, split_root } = r else {
            panic!("expected a split, got {r:?}");
        };
        assert_eq!(root, bridged.root());
        assert_eq!(t.component_count(), 2);
        // The two parts are exactly the pre-bridge components again. Their
        // roots are the surviving bridge root plus a fresh (or re-seated)
        // one — re-bridging must still work.
        assert_eq!(t.find(n(0)), t.find(n(1)));
        assert_eq!(t.find(n(2)), t.find(n(3)));
        assert_ne!(t.find(n(0)), t.find(n(2)));
        let rebridged = t.insert(n(0), n(3));
        assert!(matches!(rebridged, ComponentChange::Bridged { .. }));
        assert_eq!(t.component_count(), 1);
        let _ = (a, b, split_root);
    }

    #[test]
    fn self_loops_refine_like_any_flow() {
        let mut t = ComponentTracker::new();
        let root = t.insert(n(4), n(4)).root();
        t.insert(n(4), n(5));
        assert_eq!(
            t.remove(n(4), n(4)),
            ComponentRemoval::Shrunk {
                old_root: root,
                root
            }
        );
        assert_eq!(t.component_count(), 1);
        let r = t.remove(n(4), n(5));
        assert_eq!(r, ComponentRemoval::Drained { root });
        assert_eq!(t.component_count(), 0);
        // lone self-loop drains its singleton
        let root = t.insert(n(9), n(9)).root();
        assert_eq!(t.remove(n(9), n(9)), ComponentRemoval::Drained { root });
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn retired_slots_are_reused() {
        let mut t = ComponentTracker::new();
        t.insert(n(0), n(1));
        t.remove(n(0), n(1));
        assert_eq!(t.node_count(), 0);
        let before = t.parent.len();
        t.insert(n(7), n(8));
        assert_eq!(
            t.parent.len(),
            before,
            "drained slots must be recycled, not appended past"
        );
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.find(n(7)), t.find(n(8)));
        assert_eq!(t.find(n(0)), None);
    }

    /// Ground-truth check: random interleaved inserts/removes, with
    /// co-membership verified against a from-scratch sweep over the live
    /// edge multiset after every operation.
    #[test]
    fn random_churn_matches_fresh_connectivity() {
        // Tiny deterministic LCG so the core crate needs no rand dep here.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut rng = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut t = ComponentTracker::new();
        let mut live: Vec<(u32, u32)> = Vec::new();
        let nodes = 12u64;
        for step in 0..600 {
            let insert = live.is_empty() || rng(100) < 55;
            if insert {
                let a = rng(nodes) as u32;
                let b = rng(nodes) as u32;
                t.insert(n(a), n(b));
                live.push((a, b));
            } else {
                let i = rng(live.len() as u64) as usize;
                let (a, b) = live.swap_remove(i);
                t.remove(n(a), n(b));
            }
            // Reference: union-find rebuilt from the live edges.
            let mut reference = ComponentTracker::new();
            for &(a, b) in &live {
                reference.insert(n(a), n(b));
            }
            assert_eq!(
                t.component_count(),
                reference.component_count(),
                "step {step}: component counts diverged over {live:?}"
            );
            assert_eq!(t.node_count(), reference.node_count(), "step {step}");
            for x in 0..nodes as u32 {
                assert_eq!(
                    t.find(n(x)).is_some(),
                    reference.find(n(x)).is_some(),
                    "step {step}: liveness of node {x} diverged"
                );
                for y in (x + 1)..nodes as u32 {
                    let (fx, fy) = (t.find(n(x)), t.find(n(y)));
                    let (gx, gy) = (reference.find(n(x)), reference.find(n(y)));
                    if fx.is_some() && fy.is_some() {
                        assert_eq!(
                            fx == fy,
                            gx == gy,
                            "step {step}: co-membership of {x},{y} diverged over {live:?}"
                        );
                    }
                }
            }
        }
    }
}
