//! Conflict-component tracking over communication endpoints.
//!
//! Every penalty model in this crate is *component-local*: a flow's
//! penalty depends only on the flows it transitively shares an endpoint
//! with (GigE and InfiniBand read per-endpoint degree multisets, Myrinet
//! enumerates state sets per union–find conflict component, and the
//! baselines count direct conflicts). Two flows in disjoint connected
//! components of the shared-endpoint graph therefore never influence each
//! other's penalty — which is the partitioning invariant the sharded fluid
//! engine (`netbw-fluid`'s `with_sharded` mode) builds on: it simulates
//! each component on its own timeline and penalty cache.
//!
//! [`ComponentTracker`] maintains those connected components incrementally
//! as a union–find over [`NodeId`]s. It is deliberately **coarsening-only**:
//! components merge when a new flow bridges them and are never split when
//! flows depart. A union of true components is still a safe partition cell
//! (penalties computed over a union match the per-component answers
//! bit-for-bit, by the same locality), so splitting would only ever be a
//! performance refinement — never a correctness requirement.

use netbw_graph::NodeId;
use std::collections::HashMap;

/// Dense index of an interned endpoint inside a [`ComponentTracker`].
///
/// Component roots are identified by the index of their representative
/// node; a root index stays the canonical name of its component until the
/// component is absorbed into another (reported by
/// [`ComponentChange::Bridged`]).
pub type ComponentRoot = u32;

/// What one [`ComponentTracker::insert`] did to the component structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComponentChange {
    /// Both endpoints were new: a fresh component was created.
    Created {
        /// The new component's root.
        root: ComponentRoot,
    },
    /// The flow landed inside one existing component (possibly growing it
    /// by a new endpoint). The component's root is unchanged.
    Joined {
        /// The (pre-existing) root of the component joined.
        root: ComponentRoot,
    },
    /// The flow's endpoints lay in two distinct components, which are now
    /// one: `absorbed` is no longer a root, `root` names the union.
    Bridged {
        /// The surviving component's root.
        root: ComponentRoot,
        /// The root that was absorbed (never a root again — the tracker
        /// only coarsens).
        absorbed: ComponentRoot,
    },
}

impl ComponentChange {
    /// The root of the component the inserted flow ended up in.
    pub fn root(&self) -> ComponentRoot {
        match *self {
            ComponentChange::Created { root }
            | ComponentChange::Joined { root }
            | ComponentChange::Bridged { root, .. } => root,
        }
    }
}

/// Incremental connected components of the shared-endpoint graph: a
/// union–find over node ids, growing as flows are inserted.
///
/// Inserting a flow unions its two endpoints and reports what changed
/// ([`ComponentChange`]); the structure never splits (see the module docs
/// for why coarsening-only is sound). An existing component's root is
/// stable until the component is absorbed, which is what lets callers key
/// side tables (the sharded engine's shard map) by root.
#[derive(Debug, Default, Clone)]
pub struct ComponentTracker {
    index: HashMap<NodeId, u32>,
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl ComponentTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        ComponentTracker::default()
    }

    /// Number of distinct components.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Number of interned endpoints.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Forgets everything while keeping allocations warm.
    pub fn clear(&mut self) {
        self.index.clear();
        self.parent.clear();
        self.rank.clear();
        self.components = 0;
    }

    /// The root of the component containing `node`, or `None` if the node
    /// was never inserted.
    pub fn find(&mut self, node: NodeId) -> Option<ComponentRoot> {
        let idx = *self.index.get(&node)?;
        Some(self.find_idx(idx))
    }

    /// Unions the components of `a` and `b` (interning either endpoint as
    /// needed) and reports what changed. Inserting an intra-node flow
    /// (`a == b`) is fine: the node forms (or keeps) its own component.
    pub fn insert(&mut self, a: NodeId, b: NodeId) -> ComponentChange {
        let (ia, a_new) = self.intern(a);
        if a == b {
            return if a_new {
                self.components += 1;
                ComponentChange::Created { root: ia }
            } else {
                ComponentChange::Joined {
                    root: self.find_idx(ia),
                }
            };
        }
        let (ib, b_new) = self.intern(b);
        match (a_new, b_new) {
            (true, true) => {
                self.components += 1;
                let (root, _) = self.union(ia, ib);
                ComponentChange::Created { root }
            }
            (false, true) => {
                let root = self.find_idx(ia);
                // The fresh singleton attaches under the existing root
                // (union prefers its first argument on rank ties), so the
                // component's canonical root never moves on a join.
                let (root, _) = self.union(root, ib);
                ComponentChange::Joined { root }
            }
            (true, false) => {
                let root = self.find_idx(ib);
                let (root, _) = self.union(root, ia);
                ComponentChange::Joined { root }
            }
            (false, false) => {
                let ra = self.find_idx(ia);
                let rb = self.find_idx(ib);
                if ra == rb {
                    return ComponentChange::Joined { root: ra };
                }
                self.components -= 1;
                let (root, absorbed) = self.union(ra, rb);
                ComponentChange::Bridged { root, absorbed }
            }
        }
    }

    fn intern(&mut self, node: NodeId) -> (u32, bool) {
        if let Some(&idx) = self.index.get(&node) {
            return (idx, false);
        }
        let idx = u32::try_from(self.parent.len()).expect("tracker capacity exceeds u32");
        self.index.insert(node, idx);
        self.parent.push(idx);
        self.rank.push(0);
        (idx, true)
    }

    fn find_idx(&mut self, mut idx: u32) -> u32 {
        // Path halving keeps finds amortized near-constant without a
        // second pass.
        while self.parent[idx as usize] != idx {
            let grandparent = self.parent[self.parent[idx as usize] as usize];
            self.parent[idx as usize] = grandparent;
            idx = grandparent;
        }
        idx
    }

    /// Unions two roots, returning `(winner, loser)`. Rank ties go to the
    /// first argument — the invariant joins rely on to keep existing roots
    /// canonical.
    fn union(&mut self, ra: u32, rb: u32) -> (u32, u32) {
        debug_assert_ne!(ra, rb);
        let (winner, loser) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[loser as usize] = winner;
        if self.rank[winner as usize] == self.rank[loser as usize] {
            self.rank[winner as usize] += 1;
        }
        (winner, loser)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn disjoint_flows_create_distinct_components() {
        let mut t = ComponentTracker::new();
        let a = t.insert(n(0), n(1));
        let b = t.insert(n(2), n(3));
        assert!(matches!(a, ComponentChange::Created { .. }));
        assert!(matches!(b, ComponentChange::Created { .. }));
        assert_ne!(a.root(), b.root());
        assert_eq!(t.component_count(), 2);
        assert_eq!(t.node_count(), 4);
    }

    #[test]
    fn shared_endpoint_joins_without_moving_the_root() {
        let mut t = ComponentTracker::new();
        let created = t.insert(n(0), n(1));
        // new endpoint 2 attaches to the existing component
        let joined = t.insert(n(0), n(2));
        assert_eq!(
            joined,
            ComponentChange::Joined {
                root: created.root()
            }
        );
        // flow entirely inside the component
        let internal = t.insert(n(1), n(2));
        assert_eq!(
            internal,
            ComponentChange::Joined {
                root: created.root()
            }
        );
        // new source, existing destination: still a join, same root
        let reversed = t.insert(n(3), n(1));
        assert_eq!(
            reversed,
            ComponentChange::Joined {
                root: created.root()
            }
        );
        assert_eq!(t.component_count(), 1);
    }

    #[test]
    fn bridging_reports_winner_and_absorbed() {
        let mut t = ComponentTracker::new();
        let a = t.insert(n(0), n(1)).root();
        let b = t.insert(n(2), n(3)).root();
        let bridged = t.insert(n(1), n(2));
        let ComponentChange::Bridged { root, absorbed } = bridged else {
            panic!("expected a bridge, got {bridged:?}");
        };
        assert!(root == a && absorbed == b || root == b && absorbed == a);
        assert_eq!(t.component_count(), 1);
        // every endpoint now resolves to the surviving root
        for i in 0..4 {
            assert_eq!(t.find(n(i)), Some(root));
        }
        // further flows inside the union are joins on the surviving root
        assert_eq!(t.insert(n(0), n(3)), ComponentChange::Joined { root });
    }

    #[test]
    fn intra_node_flows_form_singleton_components() {
        let mut t = ComponentTracker::new();
        let c = t.insert(n(5), n(5));
        assert!(matches!(c, ComponentChange::Created { .. }));
        assert_eq!(t.component_count(), 1);
        assert_eq!(t.node_count(), 1);
        assert_eq!(
            t.insert(n(5), n(5)),
            ComponentChange::Joined { root: c.root() }
        );
        // the singleton bridges like any other component
        let other = t.insert(n(6), n(7)).root();
        let bridged = t.insert(n(5), n(6));
        assert!(matches!(bridged, ComponentChange::Bridged { .. }));
        assert_eq!(t.find(n(5)), t.find(n(7)));
        let _ = other;
    }

    #[test]
    fn find_misses_unknown_nodes_and_clear_forgets() {
        let mut t = ComponentTracker::new();
        assert_eq!(t.find(n(0)), None);
        t.insert(n(0), n(1));
        assert!(t.find(n(0)).is_some());
        t.clear();
        assert_eq!(t.find(n(0)), None);
        assert_eq!(t.component_count(), 0);
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn chains_of_bridges_keep_one_component() {
        let mut t = ComponentTracker::new();
        for i in 0..10u32 {
            t.insert(n(2 * i), n(2 * i + 1));
        }
        assert_eq!(t.component_count(), 10);
        for i in 0..9u32 {
            let c = t.insert(n(2 * i + 1), n(2 * i + 2));
            assert!(matches!(c, ComponentChange::Bridged { .. }), "{i}: {c:?}");
        }
        assert_eq!(t.component_count(), 1);
        let root = t.find(n(0)).unwrap();
        for i in 0..20u32 {
            assert_eq!(t.find(n(i)), Some(root));
        }
    }
}
