//! Predictive bandwidth-sharing penalty models — the primary contribution of
//! *Vienne, Martinasso, Vincent, Méhaut, "Predictive models for bandwidth
//! sharing in high performance clusters", IEEE Cluster 2008*.
//!
//! A **penalty** is the slowdown `P = T / Tref` a communication suffers when
//! it shares network resources with concurrent communications (`Tref` is the
//! time of the same transfer running alone). This crate turns a set of
//! concurrent communications into per-communication penalties, per network
//! technology:
//!
//! * [`GigabitEthernetModel`] — the paper's quantitative model for
//!   TCP/Gigabit Ethernet (§V.A), parameterised by `β`, `γo`, `γi`;
//! * [`MyrinetModel`] — the paper's descriptive model for Myrinet 2000's
//!   Stop & Go flow control (§V.B), built on exhaustive enumeration of
//!   communication *state sets* (maximal independent sets of the conflict
//!   graph);
//! * [`InfinibandModel`] — **our extension** (the paper leaves the
//!   InfiniBand model as future work), calibrated on the paper's Fig. 2
//!   InfiniHost III measurements;
//! * [`baseline`] — comparison models: a contention-blind LogP/LogGP-style
//!   [`baseline::LinearModel`] and the Kim & Lee max-conflict multiplier
//!   [`baseline::MaxConflictModel`].
//!
//! Models implement [`PenaltyModel`] and are *instantaneous*: they describe
//! rate sharing for a fixed set of in-flight communications. Completion
//! times for whole schemes come from the progressive solver in
//! `netbw-fluid`, which re-evaluates the model as communications finish.
//! When the population evolves by arrivals and departures, the solver uses
//! the stateful batch-delta entry point
//! [`PenaltyModel::penalties_with_scratch`]: each model keeps an opaque
//! per-cache [`scratch`] alive between settles (endpoint indices for the
//! closed-form models, union–find conflict components plus a cached
//! Moon–Moser budget certification for Myrinet) and patches only the
//! endpoints ([`incremental`]) or conflict components the change reaches —
//! simultaneous arrival+departure batches included, as chained
//! [`PopulationDelta::Mixed`] deltas — instead of recomputing the whole
//! fabric.
//!
//! # Example
//!
//! ```
//! use netbw_core::{MyrinetModel, PenaltyModel};
//! use netbw_graph::schemes;
//!
//! let model = MyrinetModel::default();
//! let fig5 = schemes::fig5();
//! let p = model.penalties(fig5.comms());
//! // the Fig. 6 table: a,b,c = 5; d,e,f = 2.5
//! assert_eq!(p[0].value(), 5.0);
//! assert_eq!(p[3].value(), 2.5);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod calibrate;
pub mod components;
pub mod gige;
pub mod incremental;
pub mod infiniband;
pub mod model;
pub mod myrinet;
pub mod penalty;
pub mod scratch;
pub mod sensitivity;
pub mod states;

pub use components::{ComponentChange, ComponentRemoval, ComponentRoot, ComponentTracker};
pub use gige::GigabitEthernetModel;
pub use infiniband::InfinibandModel;
pub use model::{ModelKind, PenaltyModel, PopulationDelta};
pub use myrinet::{MyrinetAnalysis, MyrinetModel};
pub use penalty::Penalty;
pub use scratch::{AffectedSet, ModelScratch, NoScratch, QueryOutcome};
pub use states::StateSetEnumeration;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::baseline::{LinearModel, MaxConflictModel};
    pub use crate::components::{ComponentChange, ComponentTracker};
    pub use crate::gige::GigabitEthernetModel;
    pub use crate::infiniband::InfinibandModel;
    pub use crate::model::{ModelKind, PenaltyModel, PopulationDelta};
    pub use crate::myrinet::MyrinetModel;
    pub use crate::penalty::Penalty;
    pub use crate::scratch::{AffectedSet, ModelScratch, QueryOutcome};
}
