//! Parameter sensitivity and direct fitting for the Gigabit Ethernet
//! model.
//!
//! The paper calibrates `β, γo, γi` with two purpose-built schemes (§V.A,
//! implemented in [`crate::calibrate`]). When only *arbitrary* measured
//! penalty tables are available — e.g. from a production cluster under
//! test — a direct fit over the parameter space is the practical
//! alternative; this module provides it, together with one-dimensional
//! sensitivity sweeps that show how forgiving each parameter is.

use crate::gige::GigabitEthernetModel;
use crate::model::PenaltyModel;
use netbw_graph::CommGraph;

/// A `(scheme, measured penalties)` observation; penalties are aligned
/// with the scheme's communications.
pub type Observation<'a> = (&'a CommGraph, &'a [f64]);

/// Mean absolute penalty error of a model over a set of observations.
///
/// # Panics
/// If an observation's penalty slice length mismatches its scheme.
pub fn penalty_error(model: &dyn PenaltyModel, observations: &[Observation<'_>]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (scheme, measured) in observations {
        assert_eq!(
            scheme.len(),
            measured.len(),
            "one measured penalty per communication"
        );
        let predicted = model.penalties(scheme.comms());
        for (p, &m) in predicted.iter().zip(*measured) {
            total += (p.value() - m).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// One-dimensional β sensitivity: the fit error as β varies with the γs
/// fixed. Returns `(β, mean abs penalty error)` pairs.
pub fn sweep_beta(
    observations: &[Observation<'_>],
    gamma_o: f64,
    gamma_i: f64,
    betas: &[f64],
) -> Vec<(f64, f64)> {
    betas
        .iter()
        .map(|&beta| {
            let model = GigabitEthernetModel::new(beta, gamma_o, gamma_i);
            (beta, penalty_error(&model, observations))
        })
        .collect()
}

/// Grid-search fit of the full `(β, γo, γi)` triple against observations,
/// refining around the best cell for `refinements` rounds. Deterministic.
pub fn fit_gige(observations: &[Observation<'_>], refinements: usize) -> GigabitEthernetModel {
    let mut lo = [0.5f64, 0.0, 0.0];
    let mut hi = [1.0f64, 0.4, 0.4];
    let steps = 8usize;
    let mut best = (f64::INFINITY, GigabitEthernetModel::default());
    for _ in 0..=refinements {
        for ib in 0..=steps {
            let beta = lo[0] + (hi[0] - lo[0]) * ib as f64 / steps as f64;
            for igo in 0..=steps {
                let go = lo[1] + (hi[1] - lo[1]) * igo as f64 / steps as f64;
                for igi in 0..=steps {
                    let gi = lo[2] + (hi[2] - lo[2]) * igi as f64 / steps as f64;
                    let model = GigabitEthernetModel::new(
                        beta.clamp(1e-6, 1.0),
                        go.clamp(0.0, 0.999),
                        gi.clamp(0.0, 0.999),
                    );
                    let err = penalty_error(&model, observations);
                    if err < best.0 {
                        best = (err, model);
                    }
                }
            }
        }
        // shrink the box around the incumbent
        let m = best.1;
        let widths = [
            (hi[0] - lo[0]) / steps as f64 * 2.0,
            (hi[1] - lo[1]) / steps as f64 * 2.0,
            (hi[2] - lo[2]) / steps as f64 * 2.0,
        ];
        lo = [
            (m.beta - widths[0]).max(1e-6),
            (m.gamma_o - widths[1]).max(0.0),
            (m.gamma_i - widths[2]).max(0.0),
        ];
        hi = [
            (m.beta + widths[0]).min(1.0),
            (m.gamma_o + widths[1]).min(0.999),
            (m.gamma_i + widths[2]).min(0.999),
        ];
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_graph::schemes;

    fn observations_from(
        truth: &GigabitEthernetModel,
        graphs: &[CommGraph],
    ) -> Vec<(CommGraph, Vec<f64>)> {
        graphs
            .iter()
            .map(|g| {
                let p: Vec<f64> = truth
                    .penalties(g.comms())
                    .iter()
                    .map(|p| p.value())
                    .collect();
                (g.clone(), p)
            })
            .collect()
    }

    #[test]
    fn penalty_error_zero_on_self() {
        let model = GigabitEthernetModel::default();
        let g = schemes::fig4(4_000_000);
        let measured: Vec<f64> = model
            .penalties(g.comms())
            .iter()
            .map(|p| p.value())
            .collect();
        let obs = [(&g, measured.as_slice())];
        assert_eq!(penalty_error(&model, &obs), 0.0);
    }

    #[test]
    fn beta_sweep_minimises_at_truth() {
        let truth = GigabitEthernetModel::new(0.8, 0.1, 0.05);
        let graphs = vec![schemes::outgoing_ladder(2), schemes::outgoing_ladder(3)];
        let owned = observations_from(&truth, &graphs);
        let obs: Vec<Observation<'_>> = owned.iter().map(|(g, p)| (g, p.as_slice())).collect();
        let sweep = sweep_beta(&obs, 0.1, 0.05, &[0.6, 0.7, 0.8, 0.9, 1.0]);
        let best = sweep.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        assert_eq!(best.0, 0.8);
        assert!(best.1 < 1e-12);
    }

    #[test]
    fn grid_fit_recovers_planted_parameters() {
        let truth = GigabitEthernetModel::new(0.77, 0.12, 0.04);
        let graphs = vec![
            schemes::outgoing_ladder(2),
            schemes::outgoing_ladder(3),
            schemes::fig4(4_000_000),
            schemes::incoming_ladder(3),
        ];
        let owned = observations_from(&truth, &graphs);
        let obs: Vec<Observation<'_>> = owned.iter().map(|(g, p)| (g, p.as_slice())).collect();
        let fitted = fit_gige(&obs, 3);
        assert!(
            (fitted.beta - truth.beta).abs() < 0.01,
            "beta {}",
            fitted.beta
        );
        assert!(
            (fitted.gamma_o - truth.gamma_o).abs() < 0.03,
            "gamma_o {}",
            fitted.gamma_o
        );
        assert!(
            (fitted.gamma_i - truth.gamma_i).abs() < 0.03,
            "gamma_i {}",
            fitted.gamma_i
        );
        assert!(penalty_error(&fitted, &obs) < 0.01);
    }

    #[test]
    fn fit_on_paper_fig2_numbers_recovers_beta() {
        // feed the paper's printed GigE penalties for schemes 2 and 3
        let g2 = schemes::outgoing_ladder(2);
        let g3 = schemes::outgoing_ladder(3);
        let m2 = [1.5, 1.5];
        let m3 = [2.25, 2.25, 2.25];
        let obs: Vec<Observation<'_>> = vec![(&g2, &m2), (&g3, &m3)];
        let fitted = fit_gige(&obs, 3);
        assert!((fitted.beta - 0.75).abs() < 0.01, "beta {}", fitted.beta);
    }

    #[test]
    #[should_panic(expected = "one measured penalty per communication")]
    fn length_mismatch_panics() {
        let g = schemes::single();
        let bad = [1.0, 2.0];
        penalty_error(&GigabitEthernetModel::default(), &[(&g, &bad)]);
    }

    #[test]
    fn empty_observations_are_zero_error() {
        assert_eq!(penalty_error(&GigabitEthernetModel::default(), &[]), 0.0);
    }
}
