//! Baseline models the paper compares against (§II).
//!
//! * [`LinearModel`] — the LogP/LogGP family: communication time is a
//!   linear function of message length with *no* contention term. As the
//!   paper notes, "these linear models poorly predict communication delays"
//!   once communications overlap. In penalty terms it always answers 1.
//! * [`MaxConflictModel`] — Kim & Lee (J. Parallel Distrib. Comput. 61(11),
//!   2001): a piecewise-linear time multiplied by "the maximum number of
//!   communications within the sharing conflict"; in penalty terms
//!   `p = max(Δo(vs), Δi(vd))`.

use crate::model::{scatter_penalties, split_intra_node, PenaltyModel};
use crate::penalty::Penalty;
use netbw_graph::Communication;

/// Contention-blind LogP/LogGP-style baseline: penalty 1 for everything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinearModel;

impl PenaltyModel for LinearModel {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        vec![Penalty::ONE; comms.len()]
    }
}

/// Kim & Lee's max-conflict multiplier baseline:
/// `p = max(Δo(src), Δi(dst))`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxConflictModel;

impl PenaltyModel for MaxConflictModel {
    fn name(&self) -> &'static str {
        "maxconflict"
    }

    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        let (indices, network) = split_intra_node(comms);
        let net: Vec<Penalty> = network
            .iter()
            .map(|c| {
                let dout = network.iter().filter(|o| o.src == c.src).count();
                let din = network.iter().filter(|o| o.dst == c.dst).count();
                Penalty::new(dout.max(din) as f64)
            })
            .collect();
        scatter_penalties(comms.len(), &indices, &net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_graph::schemes;

    #[test]
    fn linear_always_one() {
        let m = LinearModel;
        for scheme in 1..=6 {
            let g = schemes::fig2_scheme(scheme);
            assert!(m.penalties(g.comms()).iter().all(|p| p.value() == 1.0));
        }
    }

    #[test]
    fn max_conflict_on_ladder() {
        let m = MaxConflictModel;
        let g = schemes::outgoing_ladder(3);
        assert!(m.penalties(g.comms()).iter().all(|p| p.value() == 3.0));
    }

    #[test]
    fn max_conflict_on_fig5() {
        // a(0→3): Δo = 3, Δi = 3 → 3. f(2→5): Δo = 2, Δi = 1 → 2.
        let m = MaxConflictModel;
        let p = m.penalties(schemes::fig5().comms());
        assert_eq!(p[0].value(), 3.0);
        assert_eq!(p[5].value(), 2.0);
    }

    #[test]
    fn max_conflict_ignores_intra_node() {
        let mut comms = schemes::outgoing_ladder(2).comms().to_vec();
        comms.push(Communication::new(5u32, 5u32, 1));
        let p = MaxConflictModel.penalties(&comms);
        assert_eq!(p[2].value(), 1.0);
        assert_eq!(p[0].value(), 2.0);
    }
}
