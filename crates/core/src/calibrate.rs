//! Parameter estimation for the Gigabit Ethernet model (§V.A).
//!
//! The paper estimates the three parameters from targeted measurements:
//!
//! * **β** from simple outgoing conflicts: measure the penalty of `k`
//!   concurrent sends from one node and divide by `k`
//!   (Fig. 2: `1.5/2 = 2.25/3 = 0.75`);
//! * **γo, γi** from the Fig. 4 graph, where communication `a` isolates
//!   the emission-side correction and `f` the reception side:
//!   `γo = 1 − ta/(3·β·tref)`, `γi = 1 − tf/(3·β·tref)`.
//!
//! [`calibrate_gige`] drives both steps through a measurement closure, so
//! the same code calibrates against the packet simulators of
//! `netbw-packet` or against externally collected times.

use crate::gige::GigabitEthernetModel;
use netbw_graph::{schemes, CommGraph};

/// Error from calibration on degenerate measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "calibration failed: {}", self.message)
    }
}

impl std::error::Error for CalibrationError {}

/// Estimates β from outgoing-ladder penalties: the mean of `penalty/k`
/// over the provided `(k, penalty)` pairs with `k >= 2`.
pub fn estimate_beta(ladder: &[(usize, f64)]) -> Result<f64, CalibrationError> {
    let usable: Vec<f64> = ladder
        .iter()
        .filter(|(k, _)| *k >= 2)
        .map(|(k, p)| p / *k as f64)
        .collect();
    if usable.is_empty() {
        return Err(CalibrationError {
            message: "need at least one ladder point with k >= 2".into(),
        });
    }
    let beta = usable.iter().sum::<f64>() / usable.len() as f64;
    if !(0.0..=1.5).contains(&beta) || !beta.is_finite() {
        return Err(CalibrationError {
            message: format!("estimated beta {beta} is not plausible"),
        });
    }
    Ok(beta.min(1.0))
}

/// Estimates the asymmetry corrections from the Fig. 4 measurements:
/// `ta`/`tf` are the measured times of communications `a` and `f`, `tref`
/// the uncontended time for the same payload.
pub fn estimate_gammas(
    beta: f64,
    tref: f64,
    ta: f64,
    tf: f64,
) -> Result<(f64, f64), CalibrationError> {
    if tref <= 0.0 || ta <= 0.0 || tf <= 0.0 {
        return Err(CalibrationError {
            message: "times must be positive".into(),
        });
    }
    let gamma_o = 1.0 - ta / (3.0 * beta * tref);
    let gamma_i = 1.0 - tf / (3.0 * beta * tref);
    // The estimator is exact only when a ∉ Cmo with |Cmo| = 1 (Fig. 4's
    // construction); noise can push the estimate slightly negative.
    let clamp = |g: f64| g.clamp(0.0, 0.5);
    if !gamma_o.is_finite() || !gamma_i.is_finite() {
        return Err(CalibrationError {
            message: "non-finite gamma estimate".into(),
        });
    }
    Ok((clamp(gamma_o), clamp(gamma_i)))
}

/// Measurements needed by [`calibrate_gige`]: times for each communication
/// of a scheme, in scheme order, plus the uncontended reference time for
/// the same payload.
pub trait Measurer {
    /// Time of a single uncontended transfer of `size` bytes.
    fn reference_time(&mut self, size: u64) -> f64;
    /// Per-communication completion times for a scheme.
    fn measure(&mut self, scheme: &CommGraph) -> Vec<f64>;
}

impl<F, G> Measurer for (F, G)
where
    F: FnMut(u64) -> f64,
    G: FnMut(&CommGraph) -> Vec<f64>,
{
    fn reference_time(&mut self, size: u64) -> f64 {
        (self.0)(size)
    }
    fn measure(&mut self, scheme: &CommGraph) -> Vec<f64> {
        (self.1)(scheme)
    }
}

/// Runs the paper's full calibration protocol against a measurement source:
/// β from ladders k = 2, 3 (at `ladder_size` bytes), γo/γi from the Fig. 4
/// graph (at `gamma_size` bytes).
pub fn calibrate_gige<M: Measurer>(
    measurer: &mut M,
    ladder_size: u64,
    gamma_size: u64,
) -> Result<GigabitEthernetModel, CalibrationError> {
    let tref_ladder = measurer.reference_time(ladder_size);
    if tref_ladder <= 0.0 {
        return Err(CalibrationError {
            message: "non-positive reference time".into(),
        });
    }
    let mut ladder_points = Vec::new();
    for k in [2usize, 3] {
        let scheme = schemes::outgoing_ladder(k).with_uniform_size(ladder_size);
        let times = measurer.measure(&scheme);
        if times.len() != k {
            return Err(CalibrationError {
                message: format!("ladder {k}: expected {k} times, got {}", times.len()),
            });
        }
        let mean = times.iter().sum::<f64>() / k as f64;
        ladder_points.push((k, mean / tref_ladder));
    }
    let beta = estimate_beta(&ladder_points)?;

    let tref_gamma = measurer.reference_time(gamma_size);
    let fig4 = schemes::fig4(gamma_size);
    let times = measurer.measure(&fig4);
    if times.len() != 6 {
        return Err(CalibrationError {
            message: format!("fig4: expected 6 times, got {}", times.len()),
        });
    }
    let ta = times[fig4.by_label("a").expect("fig4 has a").idx()];
    let tf = times[fig4.by_label("f").expect("fig4 has f").idx()];
    let (gamma_o, gamma_i) = estimate_gammas(beta, tref_gamma, ta, tf)?;
    Ok(GigabitEthernetModel::new(beta, gamma_o, gamma_i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PenaltyModel;

    #[test]
    fn beta_from_paper_ladder() {
        // Fig. 2: penalties 1.5 (k=2) and 2.25 (k=3) → β = 0.75.
        let beta = estimate_beta(&[(2, 1.5), (3, 2.25)]).unwrap();
        assert!((beta - 0.75).abs() < 1e-12);
    }

    #[test]
    fn beta_needs_conflicted_points() {
        assert!(estimate_beta(&[(1, 1.0)]).is_err());
        assert!(estimate_beta(&[]).is_err());
    }

    #[test]
    fn gammas_from_paper_fig4() {
        // With β = 0.75, tref = 0.0477: ta = 0.095 → γo ≈ 0.115;
        // tf = 0.103 → γi ≈ 0.036 (paper's printed values).
        let (go, gi) = estimate_gammas(0.75, 0.0477, 0.095, 0.103).unwrap();
        assert!((go - 0.115).abs() < 0.008, "gamma_o {go}");
        assert!((gi - 0.036).abs() < 0.008, "gamma_i {gi}");
    }

    #[test]
    fn gammas_reject_nonpositive_times() {
        assert!(estimate_gammas(0.75, 0.0, 0.1, 0.1).is_err());
        assert!(estimate_gammas(0.75, 0.1, -0.1, 0.1).is_err());
    }

    #[test]
    fn calibration_round_trips_through_the_model_itself() {
        // Use the default model as the "hardware": calibration must
        // recover its parameters (the protocol is exact on Fig. 4 because
        // a ∉ Cmo and f ∉ Cmi with cardinality 1).
        let truth = GigabitEthernetModel::default();
        let tref_of = |size: u64| size as f64 / 1e8; // arbitrary base rate
        let mut measurer = (
            |size: u64| tref_of(size),
            |scheme: &CommGraph| {
                truth
                    .penalties(scheme.comms())
                    .iter()
                    .zip(scheme.comms())
                    .map(|(p, c)| p.value() * tref_of(c.size))
                    .collect()
            },
        );
        let fitted = calibrate_gige(&mut measurer, 20_000_000, 4_000_000).unwrap();
        assert!((fitted.beta - truth.beta).abs() < 1e-9);
        assert!((fitted.gamma_o - truth.gamma_o).abs() < 1e-9);
        assert!((fitted.gamma_i - truth.gamma_i).abs() < 1e-9);
    }

    #[test]
    fn clamps_noisy_gammas() {
        // ta larger than 3·β·tref would give negative γo: clamp to 0.
        let (go, _) = estimate_gammas(0.75, 0.04, 0.2, 0.08).unwrap();
        assert_eq!(go, 0.0);
    }
}
