//! Shared machinery for O(affected) incremental penalty updates.
//!
//! [`PenaltyModel::penalties_with_scratch`](crate::PenaltyModel::penalties_with_scratch)
//! specializations all face the same sub-problems, solved here once:
//!
//! 1. **Alignment** — pair every surviving communication of the new
//!    population with its previous penalty, using the positional
//!    [`PopulationDelta`] invariants. [`align`] performs the merge scan and
//!    *verifies* the invariants (length accounting plus per-entry equality
//!    of paired communications); any inconsistency yields `None` and the
//!    caller recomputes from scratch — a wrong hint can cost time, never
//!    correctness. Mixed batches are handled as two chained positional
//!    deltas in one pass: departures against the previous population
//!    first, then arrivals against the new one.
//! 2. **Endpoint indexing** — models reason in per-node degree groups
//!    (all communications leaving / entering a node). [`EndpointIndex`]
//!    stores, per node, the *counterpart multiset* of those groups (the
//!    destinations of the communications leaving it, the sources of those
//!    entering it). That representation is position-free, so the index
//!    survives population churn: [`EndpointIndex::insert`] and
//!    [`EndpointIndex::remove`] update it in O(group) per changed flow,
//!    which is what lets a scratch keep it alive *across* settles instead
//!    of rebuilding it O(n) each time.
//! 3. **Affected-set computation** — given the changed communications,
//!    [`affected_endpoints`] returns the source and destination nodes whose
//!    groups can possibly produce a different penalty. For the closed-form
//!    models this is the two-hop neighbourhood of the changed endpoints:
//!    a flow arriving at (or leaving) `(s, d)` changes `Δo(s)` and `Δi(d)`
//!    directly, and thereby the `Cmo`/`Cmi` asymmetry sets of every group
//!    containing a communication into `d` or out of `s`.
//! 4. **Scratch lifecycle** — [`EndpointScratch`] packages the previous
//!    population, its penalties and the live index into the opaque
//!    per-cache state of the closed-form models (GigE and its InfiniBand
//!    extension), and [`patch_endpoints`] is the shared patch driver over
//!    it: seed (from the `previous` hint) if cold, align, apply the delta
//!    to the index, re-evaluate exactly the touched communications, commit.
//!
//! All helpers operate on the *network* (inter-node) subset of a
//! population; intra-node communications have penalty 1 by contract and
//! never contribute to degrees.

use crate::model::PopulationDelta;
use crate::penalty::Penalty;
use crate::scratch::{ModelScratch, QueryOutcome};
use netbw_graph::{Communication, NodeId};
use std::collections::{HashMap, HashSet};

/// The outcome of pairing a new population against the previously queried
/// one: which previous entry (if any) each current entry corresponds to,
/// and which communications changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// For every position of the new population: the position the same
    /// communication held in the previous population, or `None` if it just
    /// arrived.
    pub prev_of: Vec<Option<usize>>,
    /// Arrived communications with their positions in the *new*
    /// population.
    pub arrived: Vec<(usize, Communication)>,
    /// Departed communications with their positions in the *previous*
    /// population.
    pub departed: Vec<(usize, Communication)>,
}

impl Alignment {
    /// All changed communications (arrivals and departures), in no
    /// particular order.
    pub fn changed(&self) -> impl Iterator<Item = &Communication> {
        self.departed
            .iter()
            .chain(self.arrived.iter())
            .map(|(_, c)| c)
    }
}

/// Pairs `comms` with `prev` according to `delta`, verifying the
/// [`PopulationDelta`] invariants along the way.
///
/// [`PopulationDelta::Mixed`] is treated as its chain semantics prescribe
/// — departures applied to `prev` first, arrivals applied to the result —
/// collapsed into a single merge scan over both slices.
///
/// Returns `None` — meaning "do a full recompute" — for
/// [`PopulationDelta::Rebuilt`], for out-of-range / non-increasing
/// positions, for length mismatches, and whenever a pair of supposedly
/// identical communications differs.
pub fn align(
    comms: &[Communication],
    delta: &PopulationDelta,
    prev: &[Communication],
) -> Option<Alignment> {
    const NO_POSITIONS: &[usize] = &[];
    let (departed_idx, arrived_idx): (&[usize], &[usize]) = match delta {
        PopulationDelta::Rebuilt => return None,
        PopulationDelta::Arrived(idx) => (NO_POSITIONS, idx),
        PopulationDelta::Departed(idx) => (idx, NO_POSITIONS),
        PopulationDelta::Mixed { departed, arrived } => (departed, arrived),
    };
    if !strictly_increasing_within(departed_idx, prev.len())
        || !strictly_increasing_within(arrived_idx, comms.len())
        || comms.len() + departed_idx.len() != prev.len() + arrived_idx.len()
    {
        return None;
    }
    let mut prev_of = Vec::with_capacity(comms.len());
    let mut arrived = Vec::with_capacity(arrived_idx.len());
    let mut departed = Vec::with_capacity(departed_idx.len());
    let mut next_arrival = arrived_idx.iter().copied().peekable();
    let mut next_departure = departed_idx.iter().copied().peekable();
    let mut p = 0usize;
    for (i, c) in comms.iter().enumerate() {
        if next_arrival.peek() == Some(&i) {
            next_arrival.next();
            arrived.push((i, *c));
            prev_of.push(None);
            continue;
        }
        // Skip over departures interleaved before the matching survivor.
        while next_departure.peek() == Some(&p) {
            next_departure.next();
            departed.push((p, prev[p]));
            p += 1;
        }
        if p >= prev.len() || prev[p] != *c {
            return None;
        }
        prev_of.push(Some(p));
        p += 1;
    }
    while next_departure.peek() == Some(&p) {
        next_departure.next();
        departed.push((p, prev[p]));
        p += 1;
    }
    if p != prev.len() {
        return None;
    }
    Some(Alignment {
        prev_of,
        arrived,
        departed,
    })
}

fn strictly_increasing_within(idx: &[usize], len: usize) -> bool {
    idx.windows(2).all(|w| w[0] < w[1]) && idx.iter().all(|&i| i < len)
}

/// Per-node occupancy groups over one communication population, stored as
/// *counterpart multisets*: for each node, the destinations of the
/// communications leaving it and the sources of those entering it. This
/// representation carries no slice positions, so it stays valid across
/// population churn and supports O(group) incremental updates.
#[derive(Debug, Default, Clone)]
pub struct EndpointIndex {
    by_src: HashMap<NodeId, Vec<NodeId>>,
    by_dst: HashMap<NodeId, Vec<NodeId>>,
}

impl EndpointIndex {
    /// Indexes `comms` by source and destination node. The caller is
    /// expected to pass the network (inter-node) subset; intra-node
    /// entries would corrupt the degree counts.
    pub fn build(comms: &[Communication]) -> Self {
        let mut index = EndpointIndex::default();
        for c in comms {
            index.insert(c);
        }
        index
    }

    /// Adds one network communication to the groups of its endpoints.
    pub fn insert(&mut self, c: &Communication) {
        debug_assert!(!c.is_intra_node(), "index over network subset only");
        self.by_src.entry(c.src).or_default().push(c.dst);
        self.by_dst.entry(c.dst).or_default().push(c.src);
    }

    /// Removes one occurrence of `c` from the groups of its endpoints.
    /// Returns `false` — signalling a corrupt index the caller must
    /// rebuild — if `c` is not present.
    pub fn remove(&mut self, c: &Communication) -> bool {
        fn take(map: &mut HashMap<NodeId, Vec<NodeId>>, key: NodeId, value: NodeId) -> bool {
            let Some(group) = map.get_mut(&key) else {
                return false;
            };
            let Some(pos) = group.iter().position(|&n| n == value) else {
                return false;
            };
            group.swap_remove(pos);
            if group.is_empty() {
                map.remove(&key);
            }
            true
        }
        take(&mut self.by_src, c.src, c.dst) && take(&mut self.by_dst, c.dst, c.src)
    }

    /// Destination counterparts of the communications leaving `node` (the
    /// `Cmo` candidate group), empty if none.
    pub fn outgoing(&self, node: NodeId) -> &[NodeId] {
        self.by_src.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Source counterparts of the communications entering `node` (the
    /// `Cmi` candidate group), empty if none.
    pub fn incoming(&self, node: NodeId) -> &[NodeId] {
        self.by_dst.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `Δo` of `node`: how many indexed communications leave it.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.outgoing(node).len()
    }

    /// `Δi` of `node`: how many indexed communications enter it.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.incoming(node).len()
    }
}

/// The endpoints whose penalty groups a set of changed communications can
/// reach, under the closed-form (degree-driven) models.
#[derive(Debug, Default, Clone)]
pub struct AffectedEndpoints {
    /// Source nodes whose emission-side penalties (`po`) must be
    /// recomputed.
    pub sources: HashSet<NodeId>,
    /// Destination nodes whose reception-side penalties (`pi`) must be
    /// recomputed.
    pub dests: HashSet<NodeId>,
    /// Source nodes of the changed communications themselves (useful for
    /// duplex-coupling terms keyed on the opposite role).
    pub changed_sources: HashSet<NodeId>,
    /// Destination nodes of the changed communications themselves.
    pub changed_dests: HashSet<NodeId>,
}

impl AffectedEndpoints {
    /// True when `comm`'s penalty may differ from its previous value under
    /// a model whose penalty is `max(po(src group), pi(dst group))`.
    pub fn touches(&self, comm: &Communication) -> bool {
        self.sources.contains(&comm.src) || self.dests.contains(&comm.dst)
    }
}

/// Computes the affected endpoints of `changed` within the population
/// described by `index` (the *new* population's network subset).
///
/// `po(c)` depends on the communications sharing `c`'s source *and* on the
/// in-degrees of their destinations (through the `Cmo` maximum), so a
/// changed flow `(s, d)` affects: every group leaving `s`, and every group
/// leaving a node that currently sends into `d`. Symmetrically for `pi`.
/// Intra-node changed communications are invisible to the network and are
/// skipped.
pub fn affected_endpoints<'a>(
    index: &EndpointIndex,
    changed: impl IntoIterator<Item = &'a Communication>,
) -> AffectedEndpoints {
    let mut out = AffectedEndpoints::default();
    for c in changed.into_iter().filter(|c| !c.is_intra_node()) {
        out.changed_sources.insert(c.src);
        out.changed_dests.insert(c.dst);
    }
    for &d in &out.changed_dests {
        // Δi(d) changed: every group containing a comm into d sees a
        // different Cmo maximum — the index hands us those groups'
        // source nodes directly.
        out.sources.extend(index.incoming(d).iter().copied());
    }
    for &s in &out.changed_sources {
        out.dests.extend(index.outgoing(s).iter().copied());
    }
    out.sources.extend(out.changed_sources.iter().copied());
    out.dests.extend(out.changed_dests.iter().copied());
    out
}

/// The per-cache scratch of the closed-form (endpoint-driven) models: the
/// previously settled population with its penalties, plus the live
/// [`EndpointIndex`] over its network subset. [`patch_endpoints`] keeps
/// all three in sync across settles, so a settle never rebuilds the index
/// from zero unless the hints were unusable.
#[derive(Debug, Default, Clone)]
pub struct EndpointScratch {
    settled: bool,
    prev: Vec<Communication>,
    prev_pens: Vec<Penalty>,
    index: EndpointIndex,
}

impl EndpointScratch {
    /// True once the scratch describes a settled population.
    pub fn is_settled(&self) -> bool {
        self.settled
    }

    /// Re-seeds the scratch from a full population/penalty pair (a full
    /// recompute, or the caller-provided `previous` hint): one O(n) index
    /// build.
    pub fn rebuild(&mut self, comms: &[Communication], pens: &[Penalty]) {
        debug_assert_eq!(comms.len(), pens.len());
        self.settled = true;
        self.prev = comms.to_vec();
        self.prev_pens = pens.to_vec();
        self.index = EndpointIndex::default();
        for c in comms.iter().filter(|c| !c.is_intra_node()) {
            self.index.insert(c);
        }
    }
}

/// The shared patch driver of the closed-form models (GigE and its
/// InfiniBand extension): seed the scratch from `previous` if it is cold,
/// align the delta against the scratch's population, apply the change to
/// the endpoint index, then re-evaluate exactly the communications
/// `touches` selects — every other survivor keeps its previous penalty
/// verbatim. On success the scratch is committed to the new population.
///
/// Returns `(penalties, seeded, affected)` — `seeded` is true when the
/// scratch had to be (re)built from the `previous` hint, i.e. the query
/// still paid one O(n) index build; `affected` lists (strictly
/// increasing) exactly the positions re-evaluated this query — arrivals
/// and touched survivors — every other position's penalty being a
/// bitwise copy of its previous value. `None` means the hints and the
/// scratch were both unusable: the caller must recompute in full and
/// [`EndpointScratch::rebuild`] the scratch (the index may be left
/// half-updated on this path).
///
/// `penalty` evaluates one network communication over the index; it must
/// be the same arithmetic the model's batch path uses, so patched and full
/// answers stay bit-for-bit identical.
pub fn patch_endpoints(
    comms: &[Communication],
    delta: &PopulationDelta,
    previous: Option<(&[Communication], &[Penalty])>,
    scratch: &mut EndpointScratch,
    touches: impl Fn(&AffectedEndpoints, &Communication) -> bool,
    penalty: impl Fn(&Communication, &EndpointIndex) -> Penalty,
) -> Option<(Vec<Penalty>, bool, Vec<usize>)> {
    let mut seeded = false;
    if !scratch.settled {
        let (prev_comms, prev_pens) = previous?;
        if prev_pens.len() != prev_comms.len() {
            return None;
        }
        scratch.rebuild(prev_comms, prev_pens);
        seeded = true;
    }
    let al = align(comms, delta, &scratch.prev)?;
    for (_, c) in al.departed.iter().filter(|(_, c)| !c.is_intra_node()) {
        if !scratch.index.remove(c) {
            return None; // corrupt scratch: caller rebuilds
        }
    }
    for (_, c) in al.arrived.iter().filter(|(_, c)| !c.is_intra_node()) {
        scratch.index.insert(c);
    }
    let aff = affected_endpoints(&scratch.index, al.changed());
    let mut out = Vec::with_capacity(comms.len());
    let mut affected = Vec::new();
    for (i, c) in comms.iter().enumerate() {
        out.push(if c.is_intra_node() {
            // Arrived intra-node comms count as affected (the caller has
            // no previous value for them); surviving ones stay ONE.
            if al.prev_of[i].is_none() {
                affected.push(i);
            }
            Penalty::ONE
        } else {
            match al.prev_of[i] {
                Some(p) if !touches(&aff, c) => scratch.prev_pens[p],
                _ => {
                    affected.push(i);
                    penalty(c, &scratch.index)
                }
            }
        });
    }
    scratch.prev = comms.to_vec();
    scratch.prev_pens = out.clone();
    Some((out, seeded, affected))
}

/// The whole `penalties_with_scratch` implementation of the closed-form
/// models, shared verbatim by GigE and its InfiniBand extension: downcast
/// the opaque scratch (an unexpected type is treated as cold local state —
/// correctness never depends on the scratch), run [`patch_endpoints`], and
/// answer with `full()` — rebuilding the scratch from its result — when
/// the patch is impossible.
pub fn endpoint_scratch_query(
    comms: &[Communication],
    delta: &PopulationDelta,
    previous: Option<(&[Communication], &[Penalty])>,
    scratch: &mut dyn ModelScratch,
    touches: impl Fn(&AffectedEndpoints, &Communication) -> bool,
    penalty: impl Fn(&Communication, &EndpointIndex) -> Penalty,
    full: impl Fn() -> Vec<Penalty>,
) -> (Vec<Penalty>, QueryOutcome) {
    let mut local = EndpointScratch::default();
    let scratch = scratch
        .as_any_mut()
        .downcast_mut::<EndpointScratch>()
        .unwrap_or(&mut local);
    match patch_endpoints(comms, delta, previous, scratch, touches, penalty) {
        Some((pens, seeded, affected)) => (
            pens,
            QueryOutcome {
                patched: true,
                scratch_rebuilt: seeded,
                budget_fallback: false,
                affected: crate::scratch::AffectedSet::Positions(affected),
            },
        ),
        None => {
            let pens = full();
            scratch.rebuild(comms, &pens);
            (pens, QueryOutcome::rebuild())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: u32, d: u32) -> Communication {
        Communication::new(s, d, 100)
    }

    #[test]
    fn arrival_alignment_pairs_survivors_in_order() {
        let prev = [c(0, 1), c(2, 3)];
        let comms = [c(0, 1), c(4, 5), c(2, 3)];
        let al = align(&comms, &PopulationDelta::Arrived(vec![1]), &prev).unwrap();
        assert_eq!(al.prev_of, vec![Some(0), None, Some(1)]);
        assert_eq!(al.arrived, vec![(1, c(4, 5))]);
        assert!(al.departed.is_empty());
    }

    #[test]
    fn departure_alignment_recovers_departed_comms() {
        let prev = [c(0, 1), c(2, 3), c(4, 5)];
        let comms = [c(2, 3)];
        let al = align(&comms, &PopulationDelta::Departed(vec![0, 2]), &prev).unwrap();
        assert_eq!(al.prev_of, vec![Some(1)]);
        assert_eq!(al.departed, vec![(0, c(0, 1)), (2, c(4, 5))]);
        assert!(al.arrived.is_empty());
    }

    #[test]
    fn mixed_alignment_chains_departures_then_arrivals() {
        // prev: a b c; departed {a, c}; arrived {x at 0, y at 2}.
        let prev = [c(0, 1), c(2, 3), c(4, 5)];
        let comms = [c(6, 7), c(2, 3), c(8, 9)];
        let al = align(
            &comms,
            &PopulationDelta::Mixed {
                departed: vec![0, 2],
                arrived: vec![0, 2],
            },
            &prev,
        )
        .unwrap();
        assert_eq!(al.prev_of, vec![None, Some(1), None]);
        assert_eq!(al.arrived, vec![(0, c(6, 7)), (2, c(8, 9))]);
        assert_eq!(al.departed, vec![(0, c(0, 1)), (2, c(4, 5))]);
        assert_eq!(al.changed().count(), 4);
    }

    #[test]
    fn mixed_alignment_handles_full_turnover() {
        // Every previous flow leaves, every new one arrives.
        let prev = [c(0, 1), c(2, 3)];
        let comms = [c(4, 5)];
        let al = align(
            &comms,
            &PopulationDelta::Mixed {
                departed: vec![0, 1],
                arrived: vec![0],
            },
            &prev,
        )
        .unwrap();
        assert_eq!(al.prev_of, vec![None]);
        assert_eq!(al.departed.len(), 2);
    }

    #[test]
    fn empty_delta_is_identity_alignment() {
        let prev = [c(0, 1), c(2, 3)];
        let al = align(&prev, &PopulationDelta::Arrived(vec![]), &prev).unwrap();
        assert_eq!(al.prev_of, vec![Some(0), Some(1)]);
        assert_eq!(al.changed().count(), 0);
        let al = align(&prev, &PopulationDelta::Departed(vec![]), &prev).unwrap();
        assert_eq!(al.changed().count(), 0);
    }

    #[test]
    fn inconsistent_hints_are_rejected() {
        let prev = [c(0, 1), c(2, 3)];
        let comms = [c(0, 1), c(4, 5), c(2, 3)];
        // Rebuilt never aligns.
        assert!(align(&comms, &PopulationDelta::Rebuilt, &prev).is_none());
        // wrong arrival count for the length difference
        assert!(align(&comms, &PopulationDelta::Arrived(vec![0, 1]), &prev).is_none());
        // out-of-range and non-increasing positions
        assert!(align(&comms, &PopulationDelta::Arrived(vec![7]), &prev).is_none());
        assert!(align(
            &prev,
            &PopulationDelta::Departed(vec![1, 1, 1]),
            &[c(0, 1); 5]
        )
        .is_none());
        // survivor mismatch: claims position 0 arrived, pairing c(4,5)
        // against prev's c(0,1)
        assert!(align(&comms, &PopulationDelta::Arrived(vec![0]), &prev).is_none());
        // departure survivor mismatch
        assert!(align(&[c(9, 8)], &PopulationDelta::Departed(vec![0]), &prev).is_none());
        // mixed with inconsistent length accounting
        assert!(align(
            &comms,
            &PopulationDelta::Mixed {
                departed: vec![0],
                arrived: vec![1]
            },
            &prev
        )
        .is_none());
        // mixed pairing mismatch: claims prev[0] departed but comms[0]
        // still equals it while comms[2] pairs against nothing
        assert!(align(
            &comms,
            &PopulationDelta::Mixed {
                departed: vec![0],
                arrived: vec![1, 2]
            },
            &prev
        )
        .is_none());
    }

    #[test]
    fn endpoint_index_groups_by_counterpart() {
        let comms = [c(0, 1), c(0, 2), c(3, 1)];
        let idx = EndpointIndex::build(&comms);
        assert_eq!(idx.outgoing(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(idx.incoming(NodeId(1)), &[NodeId(0), NodeId(3)]);
        assert_eq!(idx.out_degree(NodeId(3)), 1);
        assert_eq!(idx.in_degree(NodeId(5)), 0);
    }

    #[test]
    fn endpoint_index_incremental_updates_match_rebuild() {
        let mut idx = EndpointIndex::build(&[c(0, 1), c(0, 2)]);
        idx.insert(&c(3, 1));
        assert!(idx.remove(&c(0, 2)));
        // multiset now {0→1, 3→1}
        assert_eq!(idx.out_degree(NodeId(0)), 1);
        assert_eq!(idx.in_degree(NodeId(1)), 2);
        assert_eq!(idx.in_degree(NodeId(2)), 0);
        // removing an absent comm reports corruption
        assert!(!idx.remove(&c(7, 8)));
        assert!(!idx.remove(&c(0, 2)));
    }

    #[test]
    fn duplicate_pairs_are_counted_as_multiset() {
        let mut idx = EndpointIndex::build(&[c(0, 1), c(0, 1)]);
        assert_eq!(idx.out_degree(NodeId(0)), 2);
        assert!(idx.remove(&c(0, 1)));
        assert_eq!(idx.out_degree(NodeId(0)), 1);
        assert!(idx.remove(&c(0, 1)));
        assert_eq!(idx.out_degree(NodeId(0)), 0);
        assert!(!idx.remove(&c(0, 1)));
    }

    #[test]
    fn affected_endpoints_cover_the_two_hop_neighbourhood() {
        // population: a(0→1), b(2→1), c(2→3), d(4→5); change: e(6→1).
        // Δi(1) changes → po of every group sending into 1 (sources 0 and
        // 2) is affected; Δo(6) changes → pi of every destination node 6
        // sends to (only 1). Node 4's flows are untouched.
        let comms = [c(0, 1), c(2, 1), c(2, 3), c(4, 5)];
        let idx = EndpointIndex::build(&comms);
        let aff = affected_endpoints(&idx, &[c(6, 1)]);
        assert!(aff.sources.contains(&NodeId(0)));
        assert!(aff.sources.contains(&NodeId(2)));
        assert!(aff.sources.contains(&NodeId(6)));
        assert!(aff.dests.contains(&NodeId(1)));
        assert!(!aff.touches(&c(4, 5)));
        assert!(aff.touches(&c(2, 3))); // src 2's group changed via b(2→1)
        assert!(aff.touches(&c(0, 1)));
    }

    #[test]
    fn intra_node_changes_affect_nothing() {
        let comms = [c(0, 1), c(2, 3)];
        let idx = EndpointIndex::build(&comms);
        let aff = affected_endpoints(&idx, &[Communication::new(5u32, 5u32, 9)]);
        assert!(aff.sources.is_empty() && aff.dests.is_empty());
        assert!(!aff.touches(&c(0, 1)));
    }

    #[test]
    fn scratch_seeds_then_patches_without_hints() {
        let prev = vec![c(0, 1), c(2, 3)];
        let prev_pens = vec![Penalty::new(2.0), Penalty::new(3.0)];
        let mut scratch = EndpointScratch::default();
        assert!(!scratch.is_settled());
        // cold + no hint: unusable
        assert!(patch_endpoints(
            &prev,
            &PopulationDelta::Arrived(vec![]),
            None,
            &mut scratch,
            |aff, c| aff.touches(c),
            |_, _| Penalty::ONE,
        )
        .is_none());
        // cold + hint: seeds, then reuses the untouched survivor verbatim
        let comms = vec![c(0, 1), c(2, 3), c(6, 7)];
        let (pens, seeded, affected) = patch_endpoints(
            &comms,
            &PopulationDelta::Arrived(vec![2]),
            Some((&prev, &prev_pens)),
            &mut scratch,
            |aff, c| aff.touches(c),
            |_, _| Penalty::new(9.0),
        )
        .unwrap();
        assert!(seeded);
        assert_eq!(pens[0], Penalty::new(2.0));
        assert_eq!(pens[1], Penalty::new(3.0));
        assert_eq!(pens[2], Penalty::new(9.0));
        // only the arrival was re-evaluated: the island comms are reported
        // untouched, so downstream finish-time caches can skip them
        assert_eq!(affected, vec![2]);
        // warm: the next settle patches with no hint at all
        let (pens, seeded, affected) = patch_endpoints(
            &comms[1..],
            &PopulationDelta::Departed(vec![0]),
            None,
            &mut scratch,
            |aff, c| aff.touches(c),
            |_, _| Penalty::new(4.0),
        )
        .unwrap();
        assert!(!seeded);
        assert_eq!(pens[0], Penalty::new(3.0)); // untouched island reused
        assert_eq!(pens[1], Penalty::new(9.0));
        assert_eq!(affected, Vec::<usize>::new());
    }
}
