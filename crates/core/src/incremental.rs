//! Shared machinery for O(affected) incremental penalty updates.
//!
//! [`PenaltyModel::penalties_after_change`](crate::PenaltyModel::penalties_after_change)
//! specializations all face the same three sub-problems, solved here once:
//!
//! 1. **Alignment** — pair every surviving communication of the new
//!    population with its previous penalty, using the positional
//!    [`PopulationDelta`] invariants. [`align`] performs the merge scan and
//!    *verifies* the invariants (length accounting plus per-entry equality
//!    of paired communications); any inconsistency yields `None` and the
//!    caller recomputes from scratch — a wrong hint can cost time, never
//!    correctness.
//! 2. **Endpoint indexing** — models reason in per-node degree groups
//!    (all communications leaving / entering a node). [`EndpointIndex`]
//!    builds those groups in one linear pass so patch paths never fall back
//!    to the quadratic scan-everything idiom.
//! 3. **Affected-set computation** — given the changed communications,
//!    [`affected_endpoints`] returns the source and destination nodes whose
//!    groups can possibly produce a different penalty. For the closed-form
//!    models this is the two-hop neighbourhood of the changed endpoints:
//!    a flow arriving at (or leaving) `(s, d)` changes `Δo(s)` and `Δi(d)`
//!    directly, and thereby the `Cmo`/`Cmi` asymmetry sets of every group
//!    containing a communication into `d` or out of `s`.
//!
//! All helpers operate on the *network* (inter-node) subset of a
//! population; intra-node communications have penalty 1 by contract and
//! never contribute to degrees.

use crate::model::PopulationDelta;
use crate::penalty::Penalty;
use netbw_graph::{Communication, NodeId};
use std::collections::{HashMap, HashSet};

/// The outcome of pairing a new population against the previously queried
/// one: which previous entry (if any) each current entry corresponds to,
/// and which communications changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// For every position of the new population: the position the same
    /// communication held in the previous population, or `None` if it just
    /// arrived.
    pub prev_of: Vec<Option<usize>>,
    /// The communications that joined or left (arrivals are entries of the
    /// new population, departures entries of the previous one).
    pub changed: Vec<Communication>,
}

/// The common prelude of every `penalties_after_change` specialization:
/// unwraps `previous`, checks the penalty slice is aligned with it, and
/// runs [`align`]. `None` — on any inconsistency — means "recompute
/// fully".
pub fn validated<'a>(
    comms: &[Communication],
    delta: &PopulationDelta,
    previous: Option<(&'a [Communication], &'a [Penalty])>,
) -> Option<(&'a [Communication], &'a [Penalty], Alignment)> {
    let (prev_comms, prev_pens) = previous?;
    if prev_pens.len() != prev_comms.len() {
        return None;
    }
    let alignment = align(comms, delta, prev_comms)?;
    Some((prev_comms, prev_pens, alignment))
}

/// The shared endpoint-patch scaffold used by the closed-form models
/// (GigE and its InfiniBand extension): validate the hints, split off
/// intra-node communications, build the endpoint index and affected
/// sets, then re-evaluate exactly the communications `touches` selects —
/// every other survivor keeps its previous penalty verbatim.
///
/// `None` means the hints were unusable and the caller must recompute in
/// full. `penalty` evaluates one network communication over the index
/// (it must be the same arithmetic the model's batch path uses, so
/// patched and full answers stay bit-for-bit identical).
pub fn patch_endpoints(
    comms: &[Communication],
    delta: &PopulationDelta,
    previous: Option<(&[Communication], &[Penalty])>,
    touches: impl Fn(&AffectedEndpoints, &Communication) -> bool,
    penalty: impl Fn(&[Communication], usize, &EndpointIndex) -> Penalty,
) -> Option<Vec<Penalty>> {
    let (_, prev_pens, al) = validated(comms, delta, previous)?;
    let (indices, network) = crate::model::split_intra_node(comms);
    let index = EndpointIndex::build(&network);
    let aff = affected_endpoints(&index, &al.changed, &network);
    let mut out = vec![Penalty::ONE; comms.len()];
    for (net_i, &orig) in indices.iter().enumerate() {
        out[orig] = match al.prev_of[orig] {
            Some(p) if !touches(&aff, &network[net_i]) => prev_pens[p],
            _ => penalty(&network, net_i, &index),
        };
    }
    Some(out)
}

/// Pairs `comms` with `prev` according to `delta`, verifying the
/// [`PopulationDelta`] invariants along the way.
///
/// Returns `None` — meaning "do a full recompute" — for
/// [`PopulationDelta::Rebuilt`], for out-of-range / non-increasing
/// positions, for length mismatches, and whenever a pair of supposedly
/// identical communications differs.
pub fn align(
    comms: &[Communication],
    delta: &PopulationDelta,
    prev: &[Communication],
) -> Option<Alignment> {
    match delta {
        PopulationDelta::Rebuilt => None,
        PopulationDelta::Arrived(idx) => {
            if !strictly_increasing_within(idx, comms.len())
                || comms.len() != prev.len() + idx.len()
            {
                return None;
            }
            let mut prev_of = Vec::with_capacity(comms.len());
            let mut changed = Vec::with_capacity(idx.len());
            let mut next_arrival = idx.iter().copied().peekable();
            let mut p = 0usize;
            for (i, c) in comms.iter().enumerate() {
                if next_arrival.peek() == Some(&i) {
                    next_arrival.next();
                    changed.push(*c);
                    prev_of.push(None);
                } else {
                    if prev[p] != *c {
                        return None;
                    }
                    prev_of.push(Some(p));
                    p += 1;
                }
            }
            Some(Alignment { prev_of, changed })
        }
        PopulationDelta::Departed(idx) => {
            if !strictly_increasing_within(idx, prev.len()) || comms.len() + idx.len() != prev.len()
            {
                return None;
            }
            let mut prev_of = Vec::with_capacity(comms.len());
            let mut changed = Vec::with_capacity(idx.len());
            let mut next_departure = idx.iter().copied().peekable();
            let mut i = 0usize;
            for (p, c) in prev.iter().enumerate() {
                if next_departure.peek() == Some(&p) {
                    next_departure.next();
                    changed.push(*c);
                } else {
                    if comms[i] != *c {
                        return None;
                    }
                    prev_of.push(Some(p));
                    i += 1;
                }
            }
            Some(Alignment { prev_of, changed })
        }
    }
}

fn strictly_increasing_within(idx: &[usize], len: usize) -> bool {
    idx.windows(2).all(|w| w[0] < w[1]) && idx.iter().all(|&i| i < len)
}

/// Per-node occupancy groups over one communication population, built in a
/// single pass. Positions refer to the slice the index was built from.
#[derive(Debug, Default, Clone)]
pub struct EndpointIndex {
    by_src: HashMap<NodeId, Vec<usize>>,
    by_dst: HashMap<NodeId, Vec<usize>>,
}

impl EndpointIndex {
    /// Indexes `comms` by source and destination node. The caller is
    /// expected to pass the network (inter-node) subset; intra-node
    /// entries would corrupt the degree counts.
    pub fn build(comms: &[Communication]) -> Self {
        let mut index = EndpointIndex::default();
        for (i, c) in comms.iter().enumerate() {
            debug_assert!(!c.is_intra_node(), "index over network subset only");
            index.by_src.entry(c.src).or_default().push(i);
            index.by_dst.entry(c.dst).or_default().push(i);
        }
        index
    }

    /// Positions of the communications leaving `node` (the `Cmo` candidate
    /// group), empty if none.
    pub fn outgoing(&self, node: NodeId) -> &[usize] {
        self.by_src.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Positions of the communications entering `node` (the `Cmi`
    /// candidate group), empty if none.
    pub fn incoming(&self, node: NodeId) -> &[usize] {
        self.by_dst.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `Δo` of `node`: how many indexed communications leave it.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.outgoing(node).len()
    }

    /// `Δi` of `node`: how many indexed communications enter it.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.incoming(node).len()
    }
}

/// The endpoints whose penalty groups a set of changed communications can
/// reach, under the closed-form (degree-driven) models.
#[derive(Debug, Default, Clone)]
pub struct AffectedEndpoints {
    /// Source nodes whose emission-side penalties (`po`) must be
    /// recomputed.
    pub sources: HashSet<NodeId>,
    /// Destination nodes whose reception-side penalties (`pi`) must be
    /// recomputed.
    pub dests: HashSet<NodeId>,
    /// Source nodes of the changed communications themselves (useful for
    /// duplex-coupling terms keyed on the opposite role).
    pub changed_sources: HashSet<NodeId>,
    /// Destination nodes of the changed communications themselves.
    pub changed_dests: HashSet<NodeId>,
}

impl AffectedEndpoints {
    /// True when `comm`'s penalty may differ from its previous value under
    /// a model whose penalty is `max(po(src group), pi(dst group))`.
    pub fn touches(&self, comm: &Communication) -> bool {
        self.sources.contains(&comm.src) || self.dests.contains(&comm.dst)
    }
}

/// Computes the affected endpoints of `changed` within the population
/// described by `index` (the *new* population's network subset).
///
/// `po(c)` depends on the communications sharing `c`'s source *and* on the
/// in-degrees of their destinations (through the `Cmo` maximum), so a
/// changed flow `(s, d)` affects: every group leaving `s`, and every group
/// leaving a node that currently sends into `d`. Symmetrically for `pi`.
/// Intra-node changed communications are invisible to the network and are
/// skipped.
pub fn affected_endpoints(
    index: &EndpointIndex,
    changed: &[Communication],
    comms: &[Communication],
) -> AffectedEndpoints {
    let mut out = AffectedEndpoints::default();
    for c in changed.iter().filter(|c| !c.is_intra_node()) {
        out.changed_sources.insert(c.src);
        out.changed_dests.insert(c.dst);
    }
    for &d in &out.changed_dests {
        // Δi(d) changed: every group containing a comm into d sees a
        // different Cmo maximum.
        for &k in index.incoming(d) {
            out.sources.insert(comms[k].src);
        }
    }
    for &s in &out.changed_sources {
        for &k in index.outgoing(s) {
            out.dests.insert(comms[k].dst);
        }
    }
    out.sources.extend(out.changed_sources.iter().copied());
    out.dests.extend(out.changed_dests.iter().copied());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: u32, d: u32) -> Communication {
        Communication::new(s, d, 100)
    }

    #[test]
    fn arrival_alignment_pairs_survivors_in_order() {
        let prev = [c(0, 1), c(2, 3)];
        let comms = [c(0, 1), c(4, 5), c(2, 3)];
        let al = align(&comms, &PopulationDelta::Arrived(vec![1]), &prev).unwrap();
        assert_eq!(al.prev_of, vec![Some(0), None, Some(1)]);
        assert_eq!(al.changed, vec![c(4, 5)]);
    }

    #[test]
    fn departure_alignment_recovers_departed_comms() {
        let prev = [c(0, 1), c(2, 3), c(4, 5)];
        let comms = [c(2, 3)];
        let al = align(&comms, &PopulationDelta::Departed(vec![0, 2]), &prev).unwrap();
        assert_eq!(al.prev_of, vec![Some(1)]);
        assert_eq!(al.changed, vec![c(0, 1), c(4, 5)]);
    }

    #[test]
    fn empty_delta_is_identity_alignment() {
        let prev = [c(0, 1), c(2, 3)];
        let al = align(&prev, &PopulationDelta::Arrived(vec![]), &prev).unwrap();
        assert_eq!(al.prev_of, vec![Some(0), Some(1)]);
        assert!(al.changed.is_empty());
        let al = align(&prev, &PopulationDelta::Departed(vec![]), &prev).unwrap();
        assert!(al.changed.is_empty());
    }

    #[test]
    fn inconsistent_hints_are_rejected() {
        let prev = [c(0, 1), c(2, 3)];
        let comms = [c(0, 1), c(4, 5), c(2, 3)];
        // Rebuilt never aligns.
        assert!(align(&comms, &PopulationDelta::Rebuilt, &prev).is_none());
        // wrong arrival count for the length difference
        assert!(align(&comms, &PopulationDelta::Arrived(vec![0, 1]), &prev).is_none());
        // out-of-range and non-increasing positions
        assert!(align(&comms, &PopulationDelta::Arrived(vec![7]), &prev).is_none());
        assert!(align(
            &prev,
            &PopulationDelta::Departed(vec![1, 1, 1]),
            &[c(0, 1); 5]
        )
        .is_none());
        // survivor mismatch: claims position 0 arrived, pairing c(4,5)
        // against prev's c(0,1)
        assert!(align(&comms, &PopulationDelta::Arrived(vec![0]), &prev).is_none());
        // departure survivor mismatch
        assert!(align(&[c(9, 8)], &PopulationDelta::Departed(vec![0]), &prev).is_none());
    }

    #[test]
    fn endpoint_index_groups_by_role() {
        let comms = [c(0, 1), c(0, 2), c(3, 1)];
        let idx = EndpointIndex::build(&comms);
        assert_eq!(idx.outgoing(NodeId(0)), &[0, 1]);
        assert_eq!(idx.incoming(NodeId(1)), &[0, 2]);
        assert_eq!(idx.out_degree(NodeId(3)), 1);
        assert_eq!(idx.in_degree(NodeId(5)), 0);
    }

    #[test]
    fn affected_endpoints_cover_the_two_hop_neighbourhood() {
        // population: a(0→1), b(2→1), c(2→3), d(4→5); change: e(6→1).
        // Δi(1) changes → po of every group sending into 1 (sources 0 and
        // 2) is affected; Δo(6) changes → pi of every destination node 6
        // sends to (only 1). Node 4's flows are untouched.
        let comms = [c(0, 1), c(2, 1), c(2, 3), c(4, 5)];
        let idx = EndpointIndex::build(&comms);
        let aff = affected_endpoints(&idx, &[c(6, 1)], &comms);
        assert!(aff.sources.contains(&NodeId(0)));
        assert!(aff.sources.contains(&NodeId(2)));
        assert!(aff.sources.contains(&NodeId(6)));
        assert!(aff.dests.contains(&NodeId(1)));
        assert!(!aff.touches(&c(4, 5)));
        assert!(aff.touches(&c(2, 3))); // src 2's group changed via b(2→1)
        assert!(aff.touches(&c(0, 1)));
    }

    #[test]
    fn intra_node_changes_affect_nothing() {
        let comms = [c(0, 1), c(2, 3)];
        let idx = EndpointIndex::build(&comms);
        let aff = affected_endpoints(&idx, &[Communication::new(5u32, 5u32, 9)], &comms);
        assert!(aff.sources.is_empty() && aff.dests.is_empty());
        assert!(!aff.touches(&c(0, 1)));
    }
}
