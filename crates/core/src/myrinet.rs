//! The Myrinet 2000 congestion model (§V.B).
//!
//! Myrinet's NIC implements a Stop & Go flow-control protocol over
//! cut-through (wormhole) routing: a receiver injects *Stop*/*Go* control
//! messages to block or resume senders. The paper abstracts this as a
//! two-state protocol — each communication is either *send*ing or
//! *wait*ing — and derives penalties from exhaustive enumeration of the
//! possible state combinations:
//!
//! 1. Enumerate all **state sets** (maximal independent sets of the strict
//!    conflict graph — see [`crate::states`]).
//! 2. The **emission coefficient** σ(c) of a communication is the number of
//!    state sets in which it sends.
//! 3. Outgoing communications of one node share the NIC fairly, so each is
//!    as slow as the slowest: every outgoing communication of a node gets
//!    the **minimum** σ among that node's outgoing communications, κ(c).
//! 4. The **penalty** is `p(c) = S / κ(c)` with `S` the number of state
//!    sets (of c's conflict component).
//!
//! On the paper's Fig. 5 example this yields exactly the Fig. 6 table:
//! sums `1,2,2,2,2,3`, minima `1,1,1,2,2,2`, penalties `5,5,5,2.5,2.5,2.5`.

use crate::model::{scatter_penalties, split_intra_node, PenaltyModel};
use crate::penalty::Penalty;
use crate::states::{
    count_components, enumerate_components, StateSetEnumeration, DEFAULT_STATE_SET_BUDGET,
};
use netbw_graph::conflict::{ConflictGraph, ConflictRule};
use netbw_graph::Communication;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The paper's Myrinet 2000 model.
#[derive(Debug)]
pub struct MyrinetModel {
    /// Conflict rule used to build the state graph. The paper's rule is
    /// [`ConflictRule::Strict`]; [`ConflictRule::SharedNode`] is kept for
    /// the `ABL-1` ablation.
    pub rule: ConflictRule,
    /// Cap on enumerated state sets per component. Beyond it the model
    /// falls back to the max-conflict approximation (`p = max(Δo, Δi)`),
    /// counted in [`MyrinetModel::fallback_count`].
    pub budget: usize,
    fallbacks: AtomicU64,
}

impl Clone for MyrinetModel {
    fn clone(&self) -> Self {
        MyrinetModel {
            rule: self.rule,
            budget: self.budget,
            fallbacks: AtomicU64::new(self.fallbacks.load(Ordering::Relaxed)),
        }
    }
}

impl Default for MyrinetModel {
    fn default() -> Self {
        MyrinetModel {
            rule: ConflictRule::Strict,
            budget: DEFAULT_STATE_SET_BUDGET,
            fallbacks: AtomicU64::new(0),
        }
    }
}

impl MyrinetModel {
    /// Model with a non-default conflict rule (ablation).
    pub fn with_rule(rule: ConflictRule) -> Self {
        MyrinetModel {
            rule,
            ..Self::default()
        }
    }

    /// How many times the exponential enumeration hit its budget and the
    /// model fell back to the max-conflict approximation. Zero on every
    /// graph in the paper.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Full analysis of a set of concurrent communications: state sets,
    /// emission coefficients, minima and penalties — everything needed to
    /// print the paper's Figs. 5 and 6.
    pub fn analyse(&self, comms: &[Communication]) -> MyrinetAnalysis {
        let (indices, network) = split_intra_node(comms);
        let graph = ConflictGraph::build(&network, self.rule);

        let mut state_count = vec![1u64; network.len()];
        let mut emission = vec![1u64; network.len()];
        let mut components = Vec::new();

        match enumerate_components(&graph, self.budget) {
            Ok(comps) => {
                for e in &comps {
                    for &v in &e.vertices {
                        state_count[v] = e.count() as u64;
                        emission[v] = e.emission(v) as u64;
                    }
                }
                components = comps;
            }
            Err(_) => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                // Approximation: S/κ ≈ max(Δo, Δi), expressed by setting
                // state_count = that maximum and emission = 1.
                (state_count, emission) = Self::fallback_tables(&network);
            }
        }

        // κ: minimum emission coefficient among each node's outgoing comms.
        let mut min_by_source: HashMap<netbw_graph::NodeId, u64> = HashMap::new();
        for (v, c) in network.iter().enumerate() {
            min_by_source
                .entry(c.src)
                .and_modify(|m| *m = (*m).min(emission[v]))
                .or_insert(emission[v]);
        }
        let coefficient: Vec<u64> = network.iter().map(|c| min_by_source[&c.src]).collect();

        let penalties =
            Self::penalties_from_tables(comms.len(), &indices, &network, &state_count, &emission);

        MyrinetAnalysis {
            network_indices: indices,
            state_count,
            emission,
            coefficient,
            components,
            penalties,
        }
    }
}

impl MyrinetModel {
    /// Penalty computation over (S, σ) tables shared by the counting and
    /// enumerating paths.
    fn penalties_from_tables(
        comms_len: usize,
        indices: &[usize],
        network: &[Communication],
        state_count: &[u64],
        emission: &[u64],
    ) -> Vec<Penalty> {
        let mut min_by_source: HashMap<netbw_graph::NodeId, u64> = HashMap::new();
        for (v, c) in network.iter().enumerate() {
            min_by_source
                .entry(c.src)
                .and_modify(|m| *m = (*m).min(emission[v]))
                .or_insert(emission[v]);
        }
        let net: Vec<Penalty> = network
            .iter()
            .enumerate()
            .map(|(v, c)| Penalty::new(state_count[v] as f64 / min_by_source[&c.src] as f64))
            .collect();
        scatter_penalties(comms_len, indices, &net)
    }

    /// Max-conflict fallback tables when the enumeration budget blows up.
    fn fallback_tables(network: &[Communication]) -> (Vec<u64>, Vec<u64>) {
        let mut state_count = vec![1u64; network.len()];
        let emission = vec![1u64; network.len()];
        for (v, c) in network.iter().enumerate() {
            let dout = network.iter().filter(|o| o.src == c.src).count();
            let din = network.iter().filter(|o| o.dst == c.dst).count();
            state_count[v] = dout.max(din) as u64;
        }
        (state_count, emission)
    }
}

impl PenaltyModel for MyrinetModel {
    fn name(&self) -> &'static str {
        "myrinet"
    }

    /// Uses the counting-only enumeration (no materialised state sets) —
    /// identical penalties to [`MyrinetModel::analyse`] at a fraction of
    /// the memory.
    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        let (indices, network) = split_intra_node(comms);
        let graph = ConflictGraph::build(&network, self.rule);
        let mut state_count = vec![1u64; network.len()];
        let mut emission = vec![1u64; network.len()];
        match count_components(&graph, self.budget) {
            Ok(comps) => {
                for c in &comps {
                    for (i, &v) in c.vertices.iter().enumerate() {
                        state_count[v] = c.count;
                        emission[v] = c.emission[i];
                    }
                }
            }
            Err(_) => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                (state_count, emission) = Self::fallback_tables(&network);
            }
        }
        Self::penalties_from_tables(comms.len(), &indices, &network, &state_count, &emission)
    }
}

/// Everything the Myrinet model derives from a communication population.
/// Indices in `state_count`/`emission`/`coefficient` refer to the network
/// (inter-node) subset; `network_indices` maps them back to the input.
#[derive(Debug, Clone)]
pub struct MyrinetAnalysis {
    /// Input indices of the network communications, in model order.
    pub network_indices: Vec<usize>,
    /// `S`: state-set count of each communication's conflict component.
    pub state_count: Vec<u64>,
    /// `σ`: number of state sets in which the communication sends
    /// (the Fig. 6 "Sum" row).
    pub emission: Vec<u64>,
    /// `κ`: minimum σ among the source node's outgoing communications
    /// (the Fig. 6 "Minimum" row).
    pub coefficient: Vec<u64>,
    /// Per-component enumerations (for printing Fig. 5's state diagrams).
    pub components: Vec<StateSetEnumeration>,
    /// Final penalties, aligned with the *input* slice (intra-node slots
    /// hold penalty 1).
    pub penalties: Vec<Penalty>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_graph::schemes;

    #[test]
    fn fig6_table_reproduced_exactly() {
        let model = MyrinetModel::default();
        let fig5 = schemes::fig5();
        let a = model.analyse(fig5.comms());
        assert_eq!(a.emission, vec![1, 2, 2, 2, 2, 3], "Sum row");
        assert_eq!(a.coefficient, vec![1, 1, 1, 2, 2, 2], "Minimum row");
        let p: Vec<f64> = a.penalties.iter().map(|p| p.value()).collect();
        assert_eq!(p, vec![5.0, 5.0, 5.0, 2.5, 2.5, 2.5], "penalty row");
        assert_eq!(model.fallback_count(), 0);
    }

    #[test]
    fn mk1_initial_penalties() {
        // Components: d–a–b–f path (3 sets), {c,g} (2 sets), {e} (1 set).
        // Penalties: a,b → 3; c,g → 2; d,f → 1.5; e → 1.
        let model = MyrinetModel::default();
        let mk1 = schemes::mk1();
        let p: Vec<f64> = model
            .penalties(mk1.comms())
            .iter()
            .map(|p| p.value())
            .collect();
        let by_label: std::collections::HashMap<&str, f64> = mk1
            .labels()
            .iter()
            .map(String::as_str)
            .zip(p.iter().copied())
            .collect();
        assert_eq!(by_label["a"], 3.0);
        assert_eq!(by_label["b"], 3.0);
        assert_eq!(by_label["c"], 2.0);
        assert_eq!(by_label["g"], 2.0);
        assert_eq!(by_label["d"], 1.5);
        assert_eq!(by_label["f"], 1.5);
        assert_eq!(by_label["e"], 1.0);
    }

    #[test]
    fn mk2_initial_penalties() {
        // Verified against the paper's fluid-predicted times (DESIGN.md §1):
        // a–d = 6, e = 1.5, f,g = 2.4, h,i = 3, j = 2.
        let model = MyrinetModel::default();
        let mk2 = schemes::mk2();
        let p: Vec<f64> = model
            .penalties(mk2.comms())
            .iter()
            .map(|p| p.value())
            .collect();
        assert_eq!(&p[0..4], &[6.0, 6.0, 6.0, 6.0]);
        assert_eq!(p[4], 1.5); // e
        assert!((p[5] - 2.4).abs() < 1e-12); // f
        assert!((p[6] - 2.4).abs() < 1e-12); // g
        assert_eq!(p[7], 3.0); // h
        assert_eq!(p[8], 3.0); // i
        assert_eq!(p[9], 2.0); // j
    }

    #[test]
    fn single_comm_penalty_one() {
        let model = MyrinetModel::default();
        let g = schemes::single();
        assert_eq!(model.penalties(g.comms())[0].value(), 1.0);
    }

    #[test]
    fn outgoing_ladder_penalty_equals_k() {
        // k comms from one node: k singleton state sets, κ = 1 → p = k.
        let model = MyrinetModel::default();
        for k in 1..=6 {
            let g = schemes::outgoing_ladder(k);
            for p in model.penalties(g.comms()) {
                assert_eq!(p.value(), k as f64, "ladder {k}");
            }
        }
    }

    #[test]
    fn intra_node_comms_are_transparent() {
        let model = MyrinetModel::default();
        let mut comms = schemes::fig5().comms().to_vec();
        comms.push(Communication::new(9u32, 9u32, 1)); // intra-node
        let p = model.penalties(&comms);
        assert_eq!(p[6].value(), 1.0);
        // and it must not perturb the network penalties
        assert_eq!(p[0].value(), 5.0);
        assert_eq!(p[5].value(), 2.5);
    }

    #[test]
    fn fallback_on_budget_blowup() {
        // 2^20 global sets but per-component is cheap; force fallback with
        // a tiny budget instead.
        let model = MyrinetModel {
            budget: 2,
            ..MyrinetModel::default()
        };
        let g = schemes::fig5();
        let p = model.penalties(g.comms());
        assert_eq!(model.fallback_count(), 1);
        // approximation: p = max(Δo, Δi) — a: max(3, 3) = 3
        assert_eq!(p[0].value(), 3.0);
    }

    #[test]
    fn shared_node_rule_changes_result() {
        // ABL-1: the loose rule gives 6 sets on Fig. 5 and different sums.
        let strict = MyrinetModel::default();
        let loose = MyrinetModel::with_rule(ConflictRule::SharedNode);
        let g = schemes::fig5();
        let ps = strict.analyse(g.comms());
        let pl = loose.analyse(g.comms());
        assert_ne!(ps.emission, pl.emission);
    }

    #[test]
    fn counting_path_matches_enumerating_path() {
        let model = MyrinetModel::default();
        for seed in 0..10 {
            let g = schemes::random(7, 9, 100, seed);
            let fast: Vec<f64> = model
                .penalties(g.comms())
                .iter()
                .map(|p| p.value())
                .collect();
            let full: Vec<f64> = model
                .analyse(g.comms())
                .penalties
                .iter()
                .map(|p| p.value())
                .collect();
            assert_eq!(fast, full, "seed {seed}");
        }
    }

    #[test]
    fn analysis_exposes_components_for_fig5_printing() {
        let model = MyrinetModel::default();
        let a = model.analyse(schemes::fig5().comms());
        assert_eq!(a.components.len(), 1);
        assert_eq!(a.components[0].count(), 5);
    }
}
