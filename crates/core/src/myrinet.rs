//! The Myrinet 2000 congestion model (§V.B).
//!
//! Myrinet's NIC implements a Stop & Go flow-control protocol over
//! cut-through (wormhole) routing: a receiver injects *Stop*/*Go* control
//! messages to block or resume senders. The paper abstracts this as a
//! two-state protocol — each communication is either *send*ing or
//! *wait*ing — and derives penalties from exhaustive enumeration of the
//! possible state combinations:
//!
//! 1. Enumerate all **state sets** (maximal independent sets of the strict
//!    conflict graph — see [`crate::states`]).
//! 2. The **emission coefficient** σ(c) of a communication is the number of
//!    state sets in which it sends.
//! 3. Outgoing communications of one node share the NIC fairly, so each is
//!    as slow as the slowest: every outgoing communication of a node gets
//!    the **minimum** σ among that node's outgoing communications, κ(c).
//! 4. The **penalty** is `p(c) = S / κ(c)` with `S` the number of state
//!    sets (of c's conflict component).
//!
//! On the paper's Fig. 5 example this yields exactly the Fig. 6 table:
//! sums `1,2,2,2,2,3`, minima `1,1,1,2,2,2`, penalties `5,5,5,2.5,2.5,2.5`.

use crate::incremental::align;
use crate::model::{scatter_penalties, split_intra_node, PenaltyModel, PopulationDelta};
use crate::penalty::Penalty;
use crate::scratch::{ModelScratch, QueryOutcome};
use crate::states::{
    count_components, enumerate_components, StateSetEnumeration, DEFAULT_STATE_SET_BUDGET,
};
use netbw_graph::conflict::{ConflictGraph, ConflictRule};
use netbw_graph::{Communication, NodeId};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// The paper's Myrinet 2000 model.
#[derive(Debug)]
pub struct MyrinetModel {
    /// Conflict rule used to build the state graph. The paper's rule is
    /// [`ConflictRule::Strict`]; [`ConflictRule::SharedNode`] is kept for
    /// the `ABL-1` ablation.
    pub rule: ConflictRule,
    /// Cap on enumerated state sets per component. Beyond it the model
    /// falls back to the max-conflict approximation (`p = max(Δo, Δi)`),
    /// counted in [`MyrinetModel::fallback_count`].
    pub budget: usize,
    fallbacks: AtomicU64,
}

impl Clone for MyrinetModel {
    fn clone(&self) -> Self {
        MyrinetModel {
            rule: self.rule,
            budget: self.budget,
            fallbacks: AtomicU64::new(self.fallbacks.load(Ordering::Relaxed)),
        }
    }
}

impl Default for MyrinetModel {
    fn default() -> Self {
        MyrinetModel {
            rule: ConflictRule::Strict,
            budget: DEFAULT_STATE_SET_BUDGET,
            fallbacks: AtomicU64::new(0),
        }
    }
}

impl MyrinetModel {
    /// Model with a non-default conflict rule (ablation).
    pub fn with_rule(rule: ConflictRule) -> Self {
        MyrinetModel {
            rule,
            ..Self::default()
        }
    }

    /// Model with a non-default enumeration budget (tests and stress
    /// harnesses exercising the max-conflict fallback).
    pub fn with_budget(budget: usize) -> Self {
        MyrinetModel {
            budget,
            ..Self::default()
        }
    }

    /// How many times the exponential enumeration hit its budget and the
    /// model fell back to the max-conflict approximation. Zero on every
    /// graph in the paper.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Full analysis of a set of concurrent communications: state sets,
    /// emission coefficients, minima and penalties — everything needed to
    /// print the paper's Figs. 5 and 6.
    pub fn analyse(&self, comms: &[Communication]) -> MyrinetAnalysis {
        let (indices, network) = split_intra_node(comms);
        let graph = ConflictGraph::build(&network, self.rule);

        let mut state_count = vec![1u64; network.len()];
        let mut emission = vec![1u64; network.len()];
        let mut components = Vec::new();

        match enumerate_components(&graph, self.budget) {
            Ok(comps) => {
                for e in &comps {
                    for &v in &e.vertices {
                        state_count[v] = e.count() as u64;
                        emission[v] = e.emission(v) as u64;
                    }
                }
                components = comps;
            }
            Err(_) => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                // Approximation: S/κ ≈ max(Δo, Δi), expressed by setting
                // state_count = that maximum and emission = 1.
                (state_count, emission) = Self::fallback_tables(&network);
            }
        }

        // κ: minimum emission coefficient among each node's outgoing comms.
        let mut min_by_source: HashMap<netbw_graph::NodeId, u64> = HashMap::new();
        for (v, c) in network.iter().enumerate() {
            min_by_source
                .entry(c.src)
                .and_modify(|m| *m = (*m).min(emission[v]))
                .or_insert(emission[v]);
        }
        let coefficient: Vec<u64> = network.iter().map(|c| min_by_source[&c.src]).collect();

        let penalties =
            Self::penalties_from_tables(comms.len(), &indices, &network, &state_count, &emission);

        MyrinetAnalysis {
            network_indices: indices,
            state_count,
            emission,
            coefficient,
            components,
            penalties,
        }
    }
}

impl MyrinetModel {
    /// Penalty computation over (S, σ) tables shared by the counting and
    /// enumerating paths.
    fn penalties_from_tables(
        comms_len: usize,
        indices: &[usize],
        network: &[Communication],
        state_count: &[u64],
        emission: &[u64],
    ) -> Vec<Penalty> {
        let mut min_by_source: HashMap<netbw_graph::NodeId, u64> = HashMap::new();
        for (v, c) in network.iter().enumerate() {
            min_by_source
                .entry(c.src)
                .and_modify(|m| *m = (*m).min(emission[v]))
                .or_insert(emission[v]);
        }
        let net: Vec<Penalty> = network
            .iter()
            .enumerate()
            .map(|(v, c)| Penalty::new(state_count[v] as f64 / min_by_source[&c.src] as f64))
            .collect();
        scatter_penalties(comms_len, indices, &net)
    }

    /// Max-conflict fallback tables when the enumeration budget blows up.
    fn fallback_tables(network: &[Communication]) -> (Vec<u64>, Vec<u64>) {
        let mut state_count = vec![1u64; network.len()];
        let emission = vec![1u64; network.len()];
        for (v, c) in network.iter().enumerate() {
            let dout = network.iter().filter(|o| o.src == c.src).count();
            let din = network.iter().filter(|o| o.dst == c.dst).count();
            state_count[v] = dout.max(din) as u64;
        }
        (state_count, emission)
    }
}

/// The Myrinet model's per-cache scratch: the previously settled
/// population, its penalties, and the union–find conflict-component
/// structure kept alive across settles — component membership, per-
/// component sizes, and a *cached Moon–Moser budget certification*
/// (`over_budget` counts the components whose worst-case state-set count
/// exceeds the enumeration budget, so headroom is re-certified only when a
/// touched component changes, never by an O(n) pass over the previous
/// population).
///
/// Component ids are never reused (`next_comp` is monotonic), so a stale
/// `src_comp`/`dst_comp` entry — left behind when a node's last flow
/// departs — can only name a dead component, which marks nothing.
#[derive(Debug, Default, Clone)]
struct MyrinetScratch {
    settled: bool,
    /// The previously settled population (full, intra-node included).
    prev: Vec<Communication>,
    prev_pens: Vec<Penalty>,
    /// Network position per full position (`usize::MAX` for intra-node).
    net_pos: Vec<usize>,
    /// Conflict-component id per previous network position.
    comp_of: Vec<usize>,
    /// Live components and their sizes (the Moon–Moser certification
    /// input).
    comp_sizes: HashMap<usize, usize>,
    /// How many live components fail the Moon–Moser certification; zero
    /// means the previous penalties are provably exact and reusable.
    over_budget: usize,
    /// Component containing the flows leaving / entering each node.
    src_comp: HashMap<NodeId, usize>,
    dst_comp: HashMap<NodeId, usize>,
    next_comp: usize,
}

impl MyrinetScratch {
    /// Rebuilds every piece of scratch state from a full
    /// population/penalty pair: one O(n·α) union–find pass.
    fn rebuild(&mut self, comms: &[Communication], pens: &[Penalty], model: &MyrinetModel) {
        debug_assert_eq!(comms.len(), pens.len());
        self.settled = true;
        self.prev = comms.to_vec();
        self.prev_pens = pens.to_vec();
        self.net_pos = vec![usize::MAX; comms.len()];
        let mut network = Vec::with_capacity(comms.len());
        for (i, c) in comms.iter().enumerate() {
            if !c.is_intra_node() {
                self.net_pos[i] = network.len();
                network.push(*c);
            }
        }
        let (comp_of, comp_count) = conflict_component_ids(&network, model.rule);
        self.comp_sizes.clear();
        self.src_comp.clear();
        self.dst_comp.clear();
        for (k, c) in network.iter().enumerate() {
            *self.comp_sizes.entry(comp_of[k]).or_insert(0) += 1;
            self.src_comp.insert(c.src, comp_of[k]);
            self.dst_comp.insert(c.dst, comp_of[k]);
        }
        self.over_budget = self
            .comp_sizes
            .values()
            .filter(|&&n| mis_upper_bound(n) > model.budget as u128)
            .count();
        self.comp_of = comp_of;
        self.next_comp = comp_count;
    }
}

/// Connected components of the conflict relation over `network`, computed
/// with a union–find over per-node groups in O(n·α) — no O(n²) pairwise
/// scan, no materialised [`ConflictGraph`]. Returns a component id per
/// communication and the component count.
fn conflict_component_ids(network: &[Communication], rule: ConflictRule) -> (Vec<usize>, usize) {
    let n = network.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let ra = find(parent, a);
        let rb = find(parent, b);
        if ra != rb {
            parent[ra] = rb;
        }
    }
    // Communications sharing a node (in the roles the rule cares about)
    // pairwise conflict, so uniting each with the first member of its
    // group reproduces the component structure.
    match rule {
        ConflictRule::Strict => {
            let mut first_src: HashMap<NodeId, usize> = HashMap::new();
            let mut first_dst: HashMap<NodeId, usize> = HashMap::new();
            for (k, c) in network.iter().enumerate() {
                match first_src.entry(c.src) {
                    Entry::Occupied(e) => union(&mut parent, k, *e.get()),
                    Entry::Vacant(e) => {
                        e.insert(k);
                    }
                }
                match first_dst.entry(c.dst) {
                    Entry::Occupied(e) => union(&mut parent, k, *e.get()),
                    Entry::Vacant(e) => {
                        e.insert(k);
                    }
                }
            }
        }
        ConflictRule::SharedNode => {
            let mut first_node: HashMap<NodeId, usize> = HashMap::new();
            for (k, c) in network.iter().enumerate() {
                for node in [c.src, c.dst] {
                    match first_node.entry(node) {
                        Entry::Occupied(e) => union(&mut parent, k, *e.get()),
                        Entry::Vacant(e) => {
                            e.insert(k);
                        }
                    }
                }
            }
        }
    }
    let mut ids: HashMap<usize, usize> = HashMap::new();
    let comp_of = (0..n)
        .map(|k| {
            let root = find(&mut parent, k);
            let next = ids.len();
            *ids.entry(root).or_insert(next)
        })
        .collect();
    (comp_of, ids.len())
}

/// The Moon–Moser bound: the largest possible number of maximal
/// independent sets of an `n`-vertex graph (saturating at `u128::MAX`).
fn mis_upper_bound(n: usize) -> u128 {
    fn pow3(e: usize) -> u128 {
        u32::try_from(e)
            .ok()
            .and_then(|e| 3u128.checked_pow(e))
            .unwrap_or(u128::MAX)
    }
    match n {
        0 | 1 => 1,
        2 => 2,
        _ => match n % 3 {
            0 => pow3(n / 3),
            1 => pow3((n - 4) / 3).saturating_mul(4),
            _ => pow3((n - 2) / 3).saturating_mul(2),
        },
    }
}

impl PenaltyModel for MyrinetModel {
    fn name(&self) -> &'static str {
        "myrinet"
    }

    /// Uses the counting-only enumeration (no materialised state sets) —
    /// identical penalties to [`MyrinetModel::analyse`] at a fraction of
    /// the memory.
    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        self.penalties_flagged(comms).0
    }

    fn new_scratch(&self) -> Box<dyn ModelScratch> {
        Box::new(MyrinetScratch::default())
    }

    /// Component-level patch over the per-cache `MyrinetScratch`: the
    /// union–find component structure survives between settles, only the
    /// conflict components reached by the changed flows are re-enumerated,
    /// and every other component keeps its previous penalties bit-for-bit.
    ///
    /// Reuse is gated on the scratch's *cached* Moon–Moser budget
    /// certification (every component of the previous population provably
    /// small enough that its enumeration fit the budget): a budget hit
    /// anywhere degrades the whole answer to the max-conflict
    /// approximation, so previous penalties can only be trusted when no
    /// component could have hit it. When certification or any consistency
    /// check fails, the model falls back to the full evaluation — with the
    /// refusal reported in [`QueryOutcome::budget_fallback`] — keeping the
    /// [`PenaltyModel::penalties`] contract exact in every regime.
    fn penalties_with_scratch(
        &self,
        comms: &[Communication],
        delta: &PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
        scratch: &mut dyn ModelScratch,
    ) -> (Vec<Penalty>, QueryOutcome) {
        let mut local = MyrinetScratch::default();
        let scratch = scratch
            .as_any_mut()
            .downcast_mut::<MyrinetScratch>()
            .unwrap_or(&mut local);
        match self.patch_scratch(comms, delta, previous, scratch) {
            Ok((pens, seeded, affected)) => (
                pens,
                QueryOutcome {
                    patched: true,
                    scratch_rebuilt: seeded,
                    budget_fallback: false,
                    affected: crate::scratch::AffectedSet::Positions(affected),
                },
            ),
            Err(budget_refusal) => {
                let (pens, fell_back) = self.penalties_flagged(comms);
                scratch.rebuild(comms, &pens, self);
                (
                    pens,
                    QueryOutcome {
                        patched: false,
                        scratch_rebuilt: true,
                        budget_fallback: budget_refusal || fell_back,
                        affected: crate::scratch::AffectedSet::All,
                    },
                )
            }
        }
    }
}

impl MyrinetModel {
    /// The [`PenaltyModel::penalties`] evaluation, also reporting whether
    /// the enumeration hit its budget and degraded to the max-conflict
    /// approximation — a local flag, so callers attributing fallbacks to
    /// *this* query never race with other users of a shared model
    /// instance (the `fallbacks` atomic is a cumulative model-wide
    /// counter, not a per-query signal).
    fn penalties_flagged(&self, comms: &[Communication]) -> (Vec<Penalty>, bool) {
        let (indices, network) = split_intra_node(comms);
        let graph = ConflictGraph::build(&network, self.rule);
        let mut state_count = vec![1u64; network.len()];
        let mut emission = vec![1u64; network.len()];
        let mut fell_back = false;
        match count_components(&graph, self.budget) {
            Ok(comps) => {
                for c in &comps {
                    for (i, &v) in c.vertices.iter().enumerate() {
                        state_count[v] = c.count;
                        emission[v] = c.emission[i];
                    }
                }
            }
            Err(_) => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                fell_back = true;
                (state_count, emission) = Self::fallback_tables(&network);
            }
        }
        let pens =
            Self::penalties_from_tables(comms.len(), &indices, &network, &state_count, &emission);
        (pens, fell_back)
    }

    /// The component patch proper. `Ok((penalties, seeded, affected))` on
    /// success (`seeded` when the scratch had to be built from the
    /// `previous` hint first, `affected` the strictly increasing input
    /// positions re-enumerated this settle); `Err(budget_refusal)` when
    /// the caller must recompute in full and rebuild the scratch — with
    /// `budget_refusal` true when the refusal was the budget certification
    /// or an enumeration blowing its budget, rather than unusable hints.
    fn patch_scratch(
        &self,
        comms: &[Communication],
        delta: &PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
        s: &mut MyrinetScratch,
    ) -> Result<(Vec<Penalty>, bool, Vec<usize>), bool> {
        let mut seeded = false;
        if !s.settled {
            let (prev_comms, prev_pens) = previous.ok_or(false)?;
            if prev_pens.len() != prev_comms.len() {
                return Err(false);
            }
            s.rebuild(prev_comms, prev_pens, self);
            seeded = true;
        }
        let al = align(comms, delta, &s.prev).ok_or(false)?;
        // Cached certification: with any previous component over the
        // Moon–Moser budget bound, the previous penalties may be the
        // max-conflict approximation and must not be mixed with exact
        // re-enumerations.
        if s.over_budget > 0 {
            return Err(true);
        }

        // Mark the components the change reaches. Departures mark their
        // own component (any component split off by a departure still
        // contains one of the departed flow's former conflict partners);
        // arrivals mark every component holding a flow they conflict with,
        // found through the per-node component maps instead of a scan.
        let mut marked: HashSet<usize> = HashSet::new();
        for (p, _) in al.departed.iter().filter(|(_, c)| !c.is_intra_node()) {
            marked.insert(s.comp_of[s.net_pos[*p]]);
        }
        for (_, c) in al.arrived.iter().filter(|(_, c)| !c.is_intra_node()) {
            let roles: &[(&HashMap<NodeId, usize>, NodeId)] = match self.rule {
                // Strict: an arrival (s, d) conflicts with flows sharing
                // its source (as source) or its destination (as
                // destination).
                ConflictRule::Strict => &[(&s.src_comp, c.src), (&s.dst_comp, c.dst)],
                // SharedNode: any flow touching either endpoint, in any
                // role.
                ConflictRule::SharedNode => &[
                    (&s.src_comp, c.src),
                    (&s.dst_comp, c.src),
                    (&s.src_comp, c.dst),
                    (&s.dst_comp, c.dst),
                ],
            };
            for (map, node) in roles {
                if let Some(&id) = map.get(node) {
                    marked.insert(id);
                }
            }
        }

        // The re-enumeration sub-population: survivors of marked
        // components plus every arrival. Its conflict graph is exact — a
        // sub member's conflict partners are all in the sub as well.
        let mut sub: Vec<Communication> = Vec::new();
        let mut sub_full_pos: Vec<usize> = Vec::new();
        let mut in_sub = vec![false; comms.len()];
        for (i, c) in comms.iter().enumerate() {
            if c.is_intra_node() {
                continue;
            }
            let member = match al.prev_of[i] {
                None => true,
                Some(p) => marked.contains(&s.comp_of[s.net_pos[p]]),
            };
            if member {
                in_sub[i] = true;
                sub_full_pos.push(i);
                sub.push(*c);
            }
        }

        let mut sub_state = vec![1u64; sub.len()];
        let mut sub_emission = vec![1u64; sub.len()];
        let mut sub_comp_of = vec![0usize; sub.len()];
        let mut sub_comp_sizes: Vec<usize> = Vec::new();
        if !sub.is_empty() {
            let graph = ConflictGraph::build(&sub, self.rule);
            match count_components(&graph, self.budget) {
                Ok(comps) => {
                    for comp in &comps {
                        let id = sub_comp_sizes.len();
                        sub_comp_sizes.push(comp.vertices.len());
                        for (j, &v) in comp.vertices.iter().enumerate() {
                            sub_state[v] = comp.count;
                            sub_emission[v] = comp.emission[j];
                            sub_comp_of[v] = id;
                        }
                    }
                }
                // An affected component blew the budget: the full
                // evaluation degrades globally, so produce exactly that.
                Err(_) => return Err(true),
            }
        }

        // κ over the sub-population is exact: a source group always lives
        // inside a single conflict component, and marked components are
        // wholly contained in the sub.
        let mut min_by_source: HashMap<NodeId, u64> = HashMap::new();
        for (v, c) in sub.iter().enumerate() {
            min_by_source
                .entry(c.src)
                .and_modify(|m| *m = (*m).min(sub_emission[v]))
                .or_insert(sub_emission[v]);
        }

        let mut out = vec![Penalty::ONE; comms.len()];
        for (i, c) in comms.iter().enumerate() {
            if c.is_intra_node() || in_sub[i] {
                continue;
            }
            let p = al.prev_of[i].expect("non-sub network entries are survivors");
            out[i] = s.prev_pens[p];
        }
        for (v, &i) in sub_full_pos.iter().enumerate() {
            out[i] = Penalty::new(sub_state[v] as f64 / min_by_source[&sub[v].src] as f64);
        }

        // Commit the new population to the scratch: marked components die,
        // the sub enumeration's components join under fresh (never reused)
        // ids, untouched components carry their ids, sizes — and
        // certification — over.
        for id in &marked {
            if let Some(size) = s.comp_sizes.remove(id) {
                if mis_upper_bound(size) > self.budget as u128 {
                    s.over_budget -= 1;
                }
            }
        }
        let base = s.next_comp;
        s.next_comp += sub_comp_sizes.len();
        for (j, &size) in sub_comp_sizes.iter().enumerate() {
            s.comp_sizes.insert(base + j, size);
            if mis_upper_bound(size) > self.budget as u128 {
                s.over_budget += 1;
            }
        }
        let mut net_pos = vec![usize::MAX; comms.len()];
        let mut comp_of = Vec::with_capacity(sub.len() + comms.len());
        let mut sub_v = 0usize;
        for (i, c) in comms.iter().enumerate() {
            if c.is_intra_node() {
                continue;
            }
            net_pos[i] = comp_of.len();
            if in_sub[i] {
                comp_of.push(base + sub_comp_of[sub_v]);
                sub_v += 1;
            } else {
                let p = al.prev_of[i].expect("non-sub network entries are survivors");
                comp_of.push(s.comp_of[s.net_pos[p]]);
            }
        }
        for (v, c) in sub.iter().enumerate() {
            s.src_comp.insert(c.src, base + sub_comp_of[v]);
            s.dst_comp.insert(c.dst, base + sub_comp_of[v]);
        }
        s.prev = comms.to_vec();
        s.prev_pens = out.clone();
        s.net_pos = net_pos;
        s.comp_of = comp_of;
        // Positions re-evaluated this settle: the sub-population plus any
        // intra-node arrival (whose ONE is new to the caller). Everything
        // else was copied verbatim from `prev_pens`.
        let affected: Vec<usize> = (0..comms.len())
            .filter(|&i| in_sub[i] || al.prev_of[i].is_none())
            .collect();
        Ok((out, seeded, affected))
    }
}

/// Everything the Myrinet model derives from a communication population.
/// Indices in `state_count`/`emission`/`coefficient` refer to the network
/// (inter-node) subset; `network_indices` maps them back to the input.
#[derive(Debug, Clone)]
pub struct MyrinetAnalysis {
    /// Input indices of the network communications, in model order.
    pub network_indices: Vec<usize>,
    /// `S`: state-set count of each communication's conflict component.
    pub state_count: Vec<u64>,
    /// `σ`: number of state sets in which the communication sends
    /// (the Fig. 6 "Sum" row).
    pub emission: Vec<u64>,
    /// `κ`: minimum σ among the source node's outgoing communications
    /// (the Fig. 6 "Minimum" row).
    pub coefficient: Vec<u64>,
    /// Per-component enumerations (for printing Fig. 5's state diagrams).
    pub components: Vec<StateSetEnumeration>,
    /// Final penalties, aligned with the *input* slice (intra-node slots
    /// hold penalty 1).
    pub penalties: Vec<Penalty>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_graph::schemes;

    #[test]
    fn fig6_table_reproduced_exactly() {
        let model = MyrinetModel::default();
        let fig5 = schemes::fig5();
        let a = model.analyse(fig5.comms());
        assert_eq!(a.emission, vec![1, 2, 2, 2, 2, 3], "Sum row");
        assert_eq!(a.coefficient, vec![1, 1, 1, 2, 2, 2], "Minimum row");
        let p: Vec<f64> = a.penalties.iter().map(|p| p.value()).collect();
        assert_eq!(p, vec![5.0, 5.0, 5.0, 2.5, 2.5, 2.5], "penalty row");
        assert_eq!(model.fallback_count(), 0);
    }

    #[test]
    fn mk1_initial_penalties() {
        // Components: d–a–b–f path (3 sets), {c,g} (2 sets), {e} (1 set).
        // Penalties: a,b → 3; c,g → 2; d,f → 1.5; e → 1.
        let model = MyrinetModel::default();
        let mk1 = schemes::mk1();
        let p: Vec<f64> = model
            .penalties(mk1.comms())
            .iter()
            .map(|p| p.value())
            .collect();
        let by_label: std::collections::HashMap<&str, f64> = mk1
            .labels()
            .iter()
            .map(String::as_str)
            .zip(p.iter().copied())
            .collect();
        assert_eq!(by_label["a"], 3.0);
        assert_eq!(by_label["b"], 3.0);
        assert_eq!(by_label["c"], 2.0);
        assert_eq!(by_label["g"], 2.0);
        assert_eq!(by_label["d"], 1.5);
        assert_eq!(by_label["f"], 1.5);
        assert_eq!(by_label["e"], 1.0);
    }

    #[test]
    fn mk2_initial_penalties() {
        // Verified against the paper's fluid-predicted times (reading of Fig. 7):
        // a–d = 6, e = 1.5, f,g = 2.4, h,i = 3, j = 2.
        let model = MyrinetModel::default();
        let mk2 = schemes::mk2();
        let p: Vec<f64> = model
            .penalties(mk2.comms())
            .iter()
            .map(|p| p.value())
            .collect();
        assert_eq!(&p[0..4], &[6.0, 6.0, 6.0, 6.0]);
        assert_eq!(p[4], 1.5); // e
        assert!((p[5] - 2.4).abs() < 1e-12); // f
        assert!((p[6] - 2.4).abs() < 1e-12); // g
        assert_eq!(p[7], 3.0); // h
        assert_eq!(p[8], 3.0); // i
        assert_eq!(p[9], 2.0); // j
    }

    #[test]
    fn single_comm_penalty_one() {
        let model = MyrinetModel::default();
        let g = schemes::single();
        assert_eq!(model.penalties(g.comms())[0].value(), 1.0);
    }

    #[test]
    fn outgoing_ladder_penalty_equals_k() {
        // k comms from one node: k singleton state sets, κ = 1 → p = k.
        let model = MyrinetModel::default();
        for k in 1..=6 {
            let g = schemes::outgoing_ladder(k);
            for p in model.penalties(g.comms()) {
                assert_eq!(p.value(), k as f64, "ladder {k}");
            }
        }
    }

    #[test]
    fn intra_node_comms_are_transparent() {
        let model = MyrinetModel::default();
        let mut comms = schemes::fig5().comms().to_vec();
        comms.push(Communication::new(9u32, 9u32, 1)); // intra-node
        let p = model.penalties(&comms);
        assert_eq!(p[6].value(), 1.0);
        // and it must not perturb the network penalties
        assert_eq!(p[0].value(), 5.0);
        assert_eq!(p[5].value(), 2.5);
    }

    #[test]
    fn fallback_on_budget_blowup() {
        // 2^20 global sets but per-component is cheap; force fallback with
        // a tiny budget instead.
        let model = MyrinetModel {
            budget: 2,
            ..MyrinetModel::default()
        };
        let g = schemes::fig5();
        let p = model.penalties(g.comms());
        assert_eq!(model.fallback_count(), 1);
        // approximation: p = max(Δo, Δi) — a: max(3, 3) = 3
        assert_eq!(p[0].value(), 3.0);
    }

    #[test]
    fn shared_node_rule_changes_result() {
        // ABL-1: the loose rule gives 6 sets on Fig. 5 and different sums.
        let strict = MyrinetModel::default();
        let loose = MyrinetModel::with_rule(ConflictRule::SharedNode);
        let g = schemes::fig5();
        let ps = strict.analyse(g.comms());
        let pl = loose.analyse(g.comms());
        assert_ne!(ps.emission, pl.emission);
    }

    #[test]
    fn counting_path_matches_enumerating_path() {
        let model = MyrinetModel::default();
        for seed in 0..10 {
            let g = schemes::random(7, 9, 100, seed);
            let fast: Vec<f64> = model
                .penalties(g.comms())
                .iter()
                .map(|p| p.value())
                .collect();
            let full: Vec<f64> = model
                .analyse(g.comms())
                .penalties
                .iter()
                .map(|p| p.value())
                .collect();
            assert_eq!(fast, full, "seed {seed}");
        }
    }

    #[test]
    fn patch_reenumerates_only_touched_components() {
        // Components: A = {(0→1), (0→2)}, B = {(5→6), (5→7)}. A departure
        // from A must reuse B's previous penalties verbatim — poison them
        // to prove the reuse happens.
        let model = MyrinetModel::default();
        let prev = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(0u32, 2u32, 10),
            Communication::new(5u32, 6u32, 10),
            Communication::new(5u32, 7u32, 10),
        ];
        let mut prev_pens = model.penalties(&prev);
        prev_pens[2] = Penalty::new(9.0);
        prev_pens[3] = Penalty::new(9.5);
        let comms = vec![prev[1], prev[2], prev[3]];
        let patched = model.penalties_after_change(
            &comms,
            crate::model::PopulationDelta::Departed(vec![0]),
            Some((&prev, &prev_pens)),
        );
        assert_eq!(patched[1].value(), 9.0, "component B must be reused");
        assert_eq!(patched[2].value(), 9.5);
        // component A is re-enumerated exactly: (0→2) alone has penalty 1
        assert_eq!(patched[0].value(), 1.0);
    }

    #[test]
    fn patch_refuses_reuse_when_budget_cannot_be_certified() {
        // With a tiny budget the previous population cannot be certified
        // (its fallback values must not be mixed with exact ones), so the
        // patch recomputes everything — and matches the full evaluation.
        let model = MyrinetModel::with_budget(2);
        let prev: Vec<Communication> = schemes::fig5().comms().to_vec();
        let mut prev_pens = model.penalties(&prev);
        // poison: if the patch (wrongly) reused, this would leak through
        prev_pens[0] = Penalty::new(99.0);
        let mut comms = prev.clone();
        comms.push(Communication::new(20u32, 21u32, 10));
        let patched = model.penalties_after_change(
            &comms,
            crate::model::PopulationDelta::Arrived(vec![prev.len()]),
            Some((&prev, &prev_pens)),
        );
        assert_eq!(patched, model.penalties(&comms));
        assert!(patched.iter().all(|p| p.value() < 99.0));
    }

    #[test]
    fn analysis_exposes_components_for_fig5_printing() {
        let model = MyrinetModel::default();
        let a = model.analyse(schemes::fig5().comms());
        assert_eq!(a.components.len(), 1);
        assert_eq!(a.components[0].count(), 5);
    }
}
