//! The Myrinet 2000 congestion model (§V.B).
//!
//! Myrinet's NIC implements a Stop & Go flow-control protocol over
//! cut-through (wormhole) routing: a receiver injects *Stop*/*Go* control
//! messages to block or resume senders. The paper abstracts this as a
//! two-state protocol — each communication is either *send*ing or
//! *wait*ing — and derives penalties from exhaustive enumeration of the
//! possible state combinations:
//!
//! 1. Enumerate all **state sets** (maximal independent sets of the strict
//!    conflict graph — see [`crate::states`]).
//! 2. The **emission coefficient** σ(c) of a communication is the number of
//!    state sets in which it sends.
//! 3. Outgoing communications of one node share the NIC fairly, so each is
//!    as slow as the slowest: every outgoing communication of a node gets
//!    the **minimum** σ among that node's outgoing communications, κ(c).
//! 4. The **penalty** is `p(c) = S / κ(c)` with `S` the number of state
//!    sets (of c's conflict component).
//!
//! On the paper's Fig. 5 example this yields exactly the Fig. 6 table:
//! sums `1,2,2,2,2,3`, minima `1,1,1,2,2,2`, penalties `5,5,5,2.5,2.5,2.5`.

use crate::incremental::validated;
use crate::model::{scatter_penalties, split_intra_node, PenaltyModel, PopulationDelta};
use crate::penalty::Penalty;
use crate::states::{
    count_components, enumerate_components, StateSetEnumeration, DEFAULT_STATE_SET_BUDGET,
};
use netbw_graph::conflict::{ConflictGraph, ConflictRule};
use netbw_graph::{Communication, NodeId};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The paper's Myrinet 2000 model.
#[derive(Debug)]
pub struct MyrinetModel {
    /// Conflict rule used to build the state graph. The paper's rule is
    /// [`ConflictRule::Strict`]; [`ConflictRule::SharedNode`] is kept for
    /// the `ABL-1` ablation.
    pub rule: ConflictRule,
    /// Cap on enumerated state sets per component. Beyond it the model
    /// falls back to the max-conflict approximation (`p = max(Δo, Δi)`),
    /// counted in [`MyrinetModel::fallback_count`].
    pub budget: usize,
    fallbacks: AtomicU64,
}

impl Clone for MyrinetModel {
    fn clone(&self) -> Self {
        MyrinetModel {
            rule: self.rule,
            budget: self.budget,
            fallbacks: AtomicU64::new(self.fallbacks.load(Ordering::Relaxed)),
        }
    }
}

impl Default for MyrinetModel {
    fn default() -> Self {
        MyrinetModel {
            rule: ConflictRule::Strict,
            budget: DEFAULT_STATE_SET_BUDGET,
            fallbacks: AtomicU64::new(0),
        }
    }
}

impl MyrinetModel {
    /// Model with a non-default conflict rule (ablation).
    pub fn with_rule(rule: ConflictRule) -> Self {
        MyrinetModel {
            rule,
            ..Self::default()
        }
    }

    /// Model with a non-default enumeration budget (tests and stress
    /// harnesses exercising the max-conflict fallback).
    pub fn with_budget(budget: usize) -> Self {
        MyrinetModel {
            budget,
            ..Self::default()
        }
    }

    /// How many times the exponential enumeration hit its budget and the
    /// model fell back to the max-conflict approximation. Zero on every
    /// graph in the paper.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Full analysis of a set of concurrent communications: state sets,
    /// emission coefficients, minima and penalties — everything needed to
    /// print the paper's Figs. 5 and 6.
    pub fn analyse(&self, comms: &[Communication]) -> MyrinetAnalysis {
        let (indices, network) = split_intra_node(comms);
        let graph = ConflictGraph::build(&network, self.rule);

        let mut state_count = vec![1u64; network.len()];
        let mut emission = vec![1u64; network.len()];
        let mut components = Vec::new();

        match enumerate_components(&graph, self.budget) {
            Ok(comps) => {
                for e in &comps {
                    for &v in &e.vertices {
                        state_count[v] = e.count() as u64;
                        emission[v] = e.emission(v) as u64;
                    }
                }
                components = comps;
            }
            Err(_) => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                // Approximation: S/κ ≈ max(Δo, Δi), expressed by setting
                // state_count = that maximum and emission = 1.
                (state_count, emission) = Self::fallback_tables(&network);
            }
        }

        // κ: minimum emission coefficient among each node's outgoing comms.
        let mut min_by_source: HashMap<netbw_graph::NodeId, u64> = HashMap::new();
        for (v, c) in network.iter().enumerate() {
            min_by_source
                .entry(c.src)
                .and_modify(|m| *m = (*m).min(emission[v]))
                .or_insert(emission[v]);
        }
        let coefficient: Vec<u64> = network.iter().map(|c| min_by_source[&c.src]).collect();

        let penalties =
            Self::penalties_from_tables(comms.len(), &indices, &network, &state_count, &emission);

        MyrinetAnalysis {
            network_indices: indices,
            state_count,
            emission,
            coefficient,
            components,
            penalties,
        }
    }
}

impl MyrinetModel {
    /// Penalty computation over (S, σ) tables shared by the counting and
    /// enumerating paths.
    fn penalties_from_tables(
        comms_len: usize,
        indices: &[usize],
        network: &[Communication],
        state_count: &[u64],
        emission: &[u64],
    ) -> Vec<Penalty> {
        let mut min_by_source: HashMap<netbw_graph::NodeId, u64> = HashMap::new();
        for (v, c) in network.iter().enumerate() {
            min_by_source
                .entry(c.src)
                .and_modify(|m| *m = (*m).min(emission[v]))
                .or_insert(emission[v]);
        }
        let net: Vec<Penalty> = network
            .iter()
            .enumerate()
            .map(|(v, c)| Penalty::new(state_count[v] as f64 / min_by_source[&c.src] as f64))
            .collect();
        scatter_penalties(comms_len, indices, &net)
    }

    /// Max-conflict fallback tables when the enumeration budget blows up.
    fn fallback_tables(network: &[Communication]) -> (Vec<u64>, Vec<u64>) {
        let mut state_count = vec![1u64; network.len()];
        let emission = vec![1u64; network.len()];
        for (v, c) in network.iter().enumerate() {
            let dout = network.iter().filter(|o| o.src == c.src).count();
            let din = network.iter().filter(|o| o.dst == c.dst).count();
            state_count[v] = dout.max(din) as u64;
        }
        (state_count, emission)
    }

    /// True when every conflict component of `network` is small enough
    /// that its state-set enumeration *provably* fits `budget` (by the
    /// Moon–Moser bound on the number of maximal independent sets). This
    /// certifies that a full evaluation of the population did not (and
    /// would not) fall back to the max-conflict approximation — the
    /// precondition for reusing its penalties during a patch.
    fn certified_under_budget(
        network: &[Communication],
        rule: ConflictRule,
        budget: usize,
    ) -> bool {
        let (comp_of, comp_count) = conflict_component_ids(network, rule);
        let mut sizes = vec![0usize; comp_count];
        for &id in &comp_of {
            sizes[id] += 1;
        }
        sizes.iter().all(|&n| mis_upper_bound(n) <= budget as u128)
    }
}

/// Connected components of the conflict relation over `network`, computed
/// with a union–find over per-node groups in O(n·α) — no O(n²) pairwise
/// scan, no materialised [`ConflictGraph`]. Returns a component id per
/// communication and the component count.
fn conflict_component_ids(network: &[Communication], rule: ConflictRule) -> (Vec<usize>, usize) {
    let n = network.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let ra = find(parent, a);
        let rb = find(parent, b);
        if ra != rb {
            parent[ra] = rb;
        }
    }
    // Communications sharing a node (in the roles the rule cares about)
    // pairwise conflict, so uniting each with the first member of its
    // group reproduces the component structure.
    match rule {
        ConflictRule::Strict => {
            let mut first_src: HashMap<NodeId, usize> = HashMap::new();
            let mut first_dst: HashMap<NodeId, usize> = HashMap::new();
            for (k, c) in network.iter().enumerate() {
                match first_src.entry(c.src) {
                    Entry::Occupied(e) => union(&mut parent, k, *e.get()),
                    Entry::Vacant(e) => {
                        e.insert(k);
                    }
                }
                match first_dst.entry(c.dst) {
                    Entry::Occupied(e) => union(&mut parent, k, *e.get()),
                    Entry::Vacant(e) => {
                        e.insert(k);
                    }
                }
            }
        }
        ConflictRule::SharedNode => {
            let mut first_node: HashMap<NodeId, usize> = HashMap::new();
            for (k, c) in network.iter().enumerate() {
                for node in [c.src, c.dst] {
                    match first_node.entry(node) {
                        Entry::Occupied(e) => union(&mut parent, k, *e.get()),
                        Entry::Vacant(e) => {
                            e.insert(k);
                        }
                    }
                }
            }
        }
    }
    let mut ids: HashMap<usize, usize> = HashMap::new();
    let comp_of = (0..n)
        .map(|k| {
            let root = find(&mut parent, k);
            let next = ids.len();
            *ids.entry(root).or_insert(next)
        })
        .collect();
    (comp_of, ids.len())
}

/// The Moon–Moser bound: the largest possible number of maximal
/// independent sets of an `n`-vertex graph (saturating at `u128::MAX`).
fn mis_upper_bound(n: usize) -> u128 {
    fn pow3(e: usize) -> u128 {
        u32::try_from(e)
            .ok()
            .and_then(|e| 3u128.checked_pow(e))
            .unwrap_or(u128::MAX)
    }
    match n {
        0 | 1 => 1,
        2 => 2,
        _ => match n % 3 {
            0 => pow3(n / 3),
            1 => pow3((n - 4) / 3).saturating_mul(4),
            _ => pow3((n - 2) / 3).saturating_mul(2),
        },
    }
}

impl PenaltyModel for MyrinetModel {
    fn name(&self) -> &'static str {
        "myrinet"
    }

    /// Uses the counting-only enumeration (no materialised state sets) —
    /// identical penalties to [`MyrinetModel::analyse`] at a fraction of
    /// the memory.
    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        let (indices, network) = split_intra_node(comms);
        let graph = ConflictGraph::build(&network, self.rule);
        let mut state_count = vec![1u64; network.len()];
        let mut emission = vec![1u64; network.len()];
        match count_components(&graph, self.budget) {
            Ok(comps) => {
                for c in &comps {
                    for (i, &v) in c.vertices.iter().enumerate() {
                        state_count[v] = c.count;
                        emission[v] = c.emission[i];
                    }
                }
            }
            Err(_) => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                (state_count, emission) = Self::fallback_tables(&network);
            }
        }
        Self::penalties_from_tables(comms.len(), &indices, &network, &state_count, &emission)
    }

    /// Component-level patch: only the conflict components reached by the
    /// changed flows are re-enumerated; every other component keeps its
    /// previous penalties bit-for-bit.
    ///
    /// Reuse is gated on a budget certification of the *previous*
    /// population (every conflict component small enough — by the
    /// Moon–Moser bound — that its enumeration provably fit the budget): a
    /// budget hit anywhere degrades the whole answer to the max-conflict
    /// approximation, so previous penalties can only be trusted when no
    /// component could have hit it. When certification or any consistency
    /// check fails, the model falls back to the full evaluation, keeping
    /// the [`PenaltyModel::penalties`] contract exact in every regime.
    fn penalties_after_change(
        &self,
        comms: &[Communication],
        delta: PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
    ) -> Vec<Penalty> {
        let Some((prev_comms, prev_pens, al)) = validated(comms, &delta, previous) else {
            return self.penalties(comms);
        };
        let (_, prev_network) = split_intra_node(prev_comms);
        if !Self::certified_under_budget(&prev_network, self.rule, self.budget) {
            return self.penalties(comms);
        }

        let (indices, network) = split_intra_node(comms);
        let (comp_of, comp_count) = conflict_component_ids(&network, self.rule);
        // Mark the components the change reaches: a changed flow conflicts
        // (under the rule) with members of every component it touched, and
        // any component split off by a departure still contains one of the
        // departed flow's former conflict partners.
        let mut marked = vec![false; comp_count];
        for ch in al.changed.iter().filter(|c| !c.is_intra_node()) {
            for (k, c) in network.iter().enumerate() {
                if self.rule.conflicts(ch, c) {
                    marked[comp_of[k]] = true;
                }
            }
        }
        let marked_vertices: Vec<usize> =
            (0..network.len()).filter(|&k| marked[comp_of[k]]).collect();

        // Re-enumerate only the marked components (the sub-population's
        // conflict components are exactly the marked components, since
        // marking is closed over whole components).
        let mut state_count = vec![0u64; network.len()];
        let mut emission = vec![0u64; network.len()];
        if !marked_vertices.is_empty() {
            let sub: Vec<Communication> = marked_vertices.iter().map(|&k| network[k]).collect();
            let graph = ConflictGraph::build(&sub, self.rule);
            match count_components(&graph, self.budget) {
                Ok(comps) => {
                    for comp in &comps {
                        for (j, &v) in comp.vertices.iter().enumerate() {
                            let k = marked_vertices[v];
                            state_count[k] = comp.count;
                            emission[k] = comp.emission[j];
                        }
                    }
                }
                // An affected component blew the budget: the full
                // evaluation degrades globally, so produce exactly that.
                Err(_) => return self.penalties(comms),
            }
        }

        // κ over the marked subset is exact: a source group always lives
        // inside a single conflict component.
        let mut min_by_source: HashMap<NodeId, u64> = HashMap::new();
        for &k in &marked_vertices {
            min_by_source
                .entry(network[k].src)
                .and_modify(|m| *m = (*m).min(emission[k]))
                .or_insert(emission[k]);
        }

        let mut out = vec![Penalty::ONE; comms.len()];
        for (k, &orig) in indices.iter().enumerate() {
            if marked[comp_of[k]] {
                out[orig] =
                    Penalty::new(state_count[k] as f64 / min_by_source[&network[k].src] as f64);
            } else {
                match al.prev_of[orig] {
                    Some(p) => out[orig] = prev_pens[p],
                    // An unmarked arrival cannot happen (an arrival always
                    // conflicts with itself); recompute if it somehow does.
                    None => return self.penalties(comms),
                }
            }
        }
        out
    }
}

/// Everything the Myrinet model derives from a communication population.
/// Indices in `state_count`/`emission`/`coefficient` refer to the network
/// (inter-node) subset; `network_indices` maps them back to the input.
#[derive(Debug, Clone)]
pub struct MyrinetAnalysis {
    /// Input indices of the network communications, in model order.
    pub network_indices: Vec<usize>,
    /// `S`: state-set count of each communication's conflict component.
    pub state_count: Vec<u64>,
    /// `σ`: number of state sets in which the communication sends
    /// (the Fig. 6 "Sum" row).
    pub emission: Vec<u64>,
    /// `κ`: minimum σ among the source node's outgoing communications
    /// (the Fig. 6 "Minimum" row).
    pub coefficient: Vec<u64>,
    /// Per-component enumerations (for printing Fig. 5's state diagrams).
    pub components: Vec<StateSetEnumeration>,
    /// Final penalties, aligned with the *input* slice (intra-node slots
    /// hold penalty 1).
    pub penalties: Vec<Penalty>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_graph::schemes;

    #[test]
    fn fig6_table_reproduced_exactly() {
        let model = MyrinetModel::default();
        let fig5 = schemes::fig5();
        let a = model.analyse(fig5.comms());
        assert_eq!(a.emission, vec![1, 2, 2, 2, 2, 3], "Sum row");
        assert_eq!(a.coefficient, vec![1, 1, 1, 2, 2, 2], "Minimum row");
        let p: Vec<f64> = a.penalties.iter().map(|p| p.value()).collect();
        assert_eq!(p, vec![5.0, 5.0, 5.0, 2.5, 2.5, 2.5], "penalty row");
        assert_eq!(model.fallback_count(), 0);
    }

    #[test]
    fn mk1_initial_penalties() {
        // Components: d–a–b–f path (3 sets), {c,g} (2 sets), {e} (1 set).
        // Penalties: a,b → 3; c,g → 2; d,f → 1.5; e → 1.
        let model = MyrinetModel::default();
        let mk1 = schemes::mk1();
        let p: Vec<f64> = model
            .penalties(mk1.comms())
            .iter()
            .map(|p| p.value())
            .collect();
        let by_label: std::collections::HashMap<&str, f64> = mk1
            .labels()
            .iter()
            .map(String::as_str)
            .zip(p.iter().copied())
            .collect();
        assert_eq!(by_label["a"], 3.0);
        assert_eq!(by_label["b"], 3.0);
        assert_eq!(by_label["c"], 2.0);
        assert_eq!(by_label["g"], 2.0);
        assert_eq!(by_label["d"], 1.5);
        assert_eq!(by_label["f"], 1.5);
        assert_eq!(by_label["e"], 1.0);
    }

    #[test]
    fn mk2_initial_penalties() {
        // Verified against the paper's fluid-predicted times (reading of Fig. 7):
        // a–d = 6, e = 1.5, f,g = 2.4, h,i = 3, j = 2.
        let model = MyrinetModel::default();
        let mk2 = schemes::mk2();
        let p: Vec<f64> = model
            .penalties(mk2.comms())
            .iter()
            .map(|p| p.value())
            .collect();
        assert_eq!(&p[0..4], &[6.0, 6.0, 6.0, 6.0]);
        assert_eq!(p[4], 1.5); // e
        assert!((p[5] - 2.4).abs() < 1e-12); // f
        assert!((p[6] - 2.4).abs() < 1e-12); // g
        assert_eq!(p[7], 3.0); // h
        assert_eq!(p[8], 3.0); // i
        assert_eq!(p[9], 2.0); // j
    }

    #[test]
    fn single_comm_penalty_one() {
        let model = MyrinetModel::default();
        let g = schemes::single();
        assert_eq!(model.penalties(g.comms())[0].value(), 1.0);
    }

    #[test]
    fn outgoing_ladder_penalty_equals_k() {
        // k comms from one node: k singleton state sets, κ = 1 → p = k.
        let model = MyrinetModel::default();
        for k in 1..=6 {
            let g = schemes::outgoing_ladder(k);
            for p in model.penalties(g.comms()) {
                assert_eq!(p.value(), k as f64, "ladder {k}");
            }
        }
    }

    #[test]
    fn intra_node_comms_are_transparent() {
        let model = MyrinetModel::default();
        let mut comms = schemes::fig5().comms().to_vec();
        comms.push(Communication::new(9u32, 9u32, 1)); // intra-node
        let p = model.penalties(&comms);
        assert_eq!(p[6].value(), 1.0);
        // and it must not perturb the network penalties
        assert_eq!(p[0].value(), 5.0);
        assert_eq!(p[5].value(), 2.5);
    }

    #[test]
    fn fallback_on_budget_blowup() {
        // 2^20 global sets but per-component is cheap; force fallback with
        // a tiny budget instead.
        let model = MyrinetModel {
            budget: 2,
            ..MyrinetModel::default()
        };
        let g = schemes::fig5();
        let p = model.penalties(g.comms());
        assert_eq!(model.fallback_count(), 1);
        // approximation: p = max(Δo, Δi) — a: max(3, 3) = 3
        assert_eq!(p[0].value(), 3.0);
    }

    #[test]
    fn shared_node_rule_changes_result() {
        // ABL-1: the loose rule gives 6 sets on Fig. 5 and different sums.
        let strict = MyrinetModel::default();
        let loose = MyrinetModel::with_rule(ConflictRule::SharedNode);
        let g = schemes::fig5();
        let ps = strict.analyse(g.comms());
        let pl = loose.analyse(g.comms());
        assert_ne!(ps.emission, pl.emission);
    }

    #[test]
    fn counting_path_matches_enumerating_path() {
        let model = MyrinetModel::default();
        for seed in 0..10 {
            let g = schemes::random(7, 9, 100, seed);
            let fast: Vec<f64> = model
                .penalties(g.comms())
                .iter()
                .map(|p| p.value())
                .collect();
            let full: Vec<f64> = model
                .analyse(g.comms())
                .penalties
                .iter()
                .map(|p| p.value())
                .collect();
            assert_eq!(fast, full, "seed {seed}");
        }
    }

    #[test]
    fn patch_reenumerates_only_touched_components() {
        // Components: A = {(0→1), (0→2)}, B = {(5→6), (5→7)}. A departure
        // from A must reuse B's previous penalties verbatim — poison them
        // to prove the reuse happens.
        let model = MyrinetModel::default();
        let prev = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(0u32, 2u32, 10),
            Communication::new(5u32, 6u32, 10),
            Communication::new(5u32, 7u32, 10),
        ];
        let mut prev_pens = model.penalties(&prev);
        prev_pens[2] = Penalty::new(9.0);
        prev_pens[3] = Penalty::new(9.5);
        let comms = vec![prev[1], prev[2], prev[3]];
        let patched = model.penalties_after_change(
            &comms,
            crate::model::PopulationDelta::Departed(vec![0]),
            Some((&prev, &prev_pens)),
        );
        assert_eq!(patched[1].value(), 9.0, "component B must be reused");
        assert_eq!(patched[2].value(), 9.5);
        // component A is re-enumerated exactly: (0→2) alone has penalty 1
        assert_eq!(patched[0].value(), 1.0);
    }

    #[test]
    fn patch_refuses_reuse_when_budget_cannot_be_certified() {
        // With a tiny budget the previous population cannot be certified
        // (its fallback values must not be mixed with exact ones), so the
        // patch recomputes everything — and matches the full evaluation.
        let model = MyrinetModel::with_budget(2);
        let prev: Vec<Communication> = schemes::fig5().comms().to_vec();
        let mut prev_pens = model.penalties(&prev);
        // poison: if the patch (wrongly) reused, this would leak through
        prev_pens[0] = Penalty::new(99.0);
        let mut comms = prev.clone();
        comms.push(Communication::new(20u32, 21u32, 10));
        let patched = model.penalties_after_change(
            &comms,
            crate::model::PopulationDelta::Arrived(vec![prev.len()]),
            Some((&prev, &prev_pens)),
        );
        assert_eq!(patched, model.penalties(&comms));
        assert!(patched.iter().all(|p| p.value() < 99.0));
    }

    #[test]
    fn analysis_exposes_components_for_fig5_printing() {
        let model = MyrinetModel::default();
        let a = model.analyse(schemes::fig5().comms());
        assert_eq!(a.components.len(), 1);
        assert_eq!(a.components[0].count(), 5);
    }
}
