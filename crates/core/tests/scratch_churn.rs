//! Multi-settle scratch equivalence: scratch-backed incremental
//! evaluation must equal the full recompute **bit-for-bit across whole
//! settle sequences**, with the scratch state carried *between* settles —
//! not just for single-delta transitions. Workloads come from the shared
//! churn-scenario generator in `netbw-bench`, so these proptests and the
//! churn bench exercise the same kind of schedules (arrival, departure and
//! chained mixed batches alike).

use netbw_bench::ChurnScenario;
use netbw_core::{
    GigabitEthernetModel, InfinibandModel, ModelKind, MyrinetModel, PenaltyModel, PopulationDelta,
};
use proptest::prelude::*;

/// Drives a whole scenario through one scratch, checking every settle
/// against the stateless full evaluation. Returns how many settles the
/// model answered with a patch and how many it refused on budget grounds.
fn check_scenario<M: PenaltyModel>(
    model: &M,
    scenario: &ChurnScenario,
) -> Result<(u64, u64), String> {
    let mut scratch = model.new_scratch();
    let mut population = scenario.initial.clone();
    let (mut patched, mut budget) = (0u64, 0u64);
    let (pens, outcome) = model.penalties_with_scratch(
        &population,
        &PopulationDelta::Rebuilt,
        None,
        scratch.as_mut(),
    );
    if pens != model.penalties(&population) {
        return Err(format!("{}: first settle diverged", model.name()));
    }
    if outcome.patched {
        return Err(format!("{}: first settle cannot patch", model.name()));
    }
    for (step_no, step) in scenario.steps.iter().enumerate() {
        let (next, delta) = step.apply(&population);
        // No `previous` hint: only the scratch can make this incremental.
        let (pens, outcome) = model.penalties_with_scratch(&next, &delta, None, scratch.as_mut());
        let full = model.penalties(&next);
        if pens != full {
            return Err(format!(
                "{}: settle {step_no} diverged under {delta:?}\n got {pens:?}\nwant {full:?}",
                model.name()
            ));
        }
        if outcome.patched {
            patched += 1;
        }
        if outcome.budget_fallback {
            budget += 1;
        }
        population = next;
    }
    Ok((patched, budget))
}

proptest! {
    /// Scratch-backed incremental == full recompute, bit-for-bit, across
    /// 40-settle sequences of arrival/departure/mixed batches, for all
    /// three specialized models — and the overwhelming majority of
    /// settles must actually be answered by patches (the scratch is not
    /// allowed to silently degrade to recompute-every-time).
    #[test]
    fn scratch_matches_full_recompute_across_settle_sequences(
        seed in 0u64..1_000_000_000,
        nodes in 4u32..12,
        initial in 0usize..12,
    ) {
        let scenario = ChurnScenario::generate(seed, nodes, initial, 40);
        for kind in [ModelKind::GigabitEthernet, ModelKind::Infiniband, ModelKind::Myrinet] {
            let model = kind.build();
            let (patched, budget) = check_scenario(&model, &scenario)?;
            // Every warm settle must be answered by a patch — except
            // Myrinet settles whose population legitimately fails the
            // Moon-Moser certification (dense drifting populations can
            // outgrow the budget); nothing may fail silently.
            prop_assert!(
                patched + budget == 40,
                "{kind}: {patched} patched + {budget} budget refusals != 40"
            );
            if kind != ModelKind::Myrinet {
                prop_assert!(budget == 0, "{kind}: closed forms have no budget");
            }
        }
    }

    /// The `SharedNode` ablation rule drives a different arrival-marking
    /// table in the Myrinet component patch (flows conflict through *any*
    /// shared endpoint, in any role): same bit-for-bit pin, and every
    /// non-patched settle must be a visible budget refusal — SharedNode
    /// merges components aggressively, so refusals are legitimate.
    #[test]
    fn shared_node_rule_scratch_matches_full_recompute(
        seed in 0u64..1_000_000_000,
        nodes in 4u32..12,
        initial in 0usize..10,
    ) {
        let scenario = ChurnScenario::generate(seed, nodes, initial, 30);
        let model = MyrinetModel::with_rule(netbw_graph::conflict::ConflictRule::SharedNode);
        let (patched, budget) = check_scenario(&model, &scenario)?;
        prop_assert!(
            patched + budget == 30,
            "shared-node: {patched} patched + {budget} budget refusals != 30"
        );
    }

    /// Same sequences through a budget-starved Myrinet: the certification
    /// must refuse every reuse (nothing patches), and the answers must
    /// still match the (fallback-regime) full evaluation exactly.
    #[test]
    fn budget_starved_myrinet_stays_exact_without_patching(
        seed in 0u64..1_000_000_000,
        nodes in 4u32..10,
    ) {
        let scenario = ChurnScenario::generate(seed, nodes, 8, 15);
        let model = MyrinetModel::with_budget(2);
        let (patched, budget) = check_scenario(&model, &scenario)?;
        // With an 8-flow initial population over ≤9 nodes some component
        // exceeds the Moon-Moser budget of 2 almost always; settles whose
        // population certifies may legitimately patch, but every refusal
        // must be visible as a budget fallback.
        prop_assert!(patched + budget == 15, "{patched} + {budget} != 15");
    }
}

#[test]
fn specialized_models_patch_mixed_batches() {
    // A deterministic pin (independent of the proptest RNG) that chained
    // mixed deltas are patched — not just accepted — by all three
    // specialized models.
    let scenario = ChurnScenario::generate(1234, 8, 6, 30);
    let mixed_steps = scenario
        .steps
        .iter()
        .filter(|s| !s.departed.is_empty() && !s.arrived.is_empty())
        .count();
    assert!(mixed_steps > 0, "seed 1234 must produce mixed steps");
    let gige = GigabitEthernetModel::default();
    let ib = InfinibandModel::default();
    let myrinet = MyrinetModel::default();
    assert_eq!(check_scenario(&gige, &scenario), Ok((30, 0)));
    assert_eq!(check_scenario(&ib, &scenario), Ok((30, 0)));
    assert_eq!(check_scenario(&myrinet, &scenario), Ok((30, 0)));
}
