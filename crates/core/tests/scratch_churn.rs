//! Multi-settle scratch equivalence: scratch-backed incremental
//! evaluation must equal the full recompute **bit-for-bit across whole
//! settle sequences**, with the scratch state carried *between* settles —
//! not just for single-delta transitions. Workloads come from the shared
//! churn-scenario generator in `netbw-bench`, so these proptests and the
//! churn bench exercise the same kind of schedules (arrival, departure and
//! chained mixed batches alike).

use netbw_bench::{ChurnScenario, ChurnStep};
use netbw_core::{
    ComponentChange, ComponentRoot, ComponentTracker, GigabitEthernetModel, InfinibandModel,
    ModelKind, ModelScratch, MyrinetModel, Penalty, PenaltyModel, PopulationDelta,
};
use netbw_graph::Communication;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

/// Drives a whole scenario through one scratch, checking every settle
/// against the stateless full evaluation. Returns how many settles the
/// model answered with a patch and how many it refused on budget grounds.
fn check_scenario<M: PenaltyModel>(
    model: &M,
    scenario: &ChurnScenario,
) -> Result<(u64, u64), String> {
    let mut scratch = model.new_scratch();
    let mut population = scenario.initial.clone();
    let (mut patched, mut budget) = (0u64, 0u64);
    let (pens, outcome) = model.penalties_with_scratch(
        &population,
        &PopulationDelta::Rebuilt,
        None,
        scratch.as_mut(),
    );
    if pens != model.penalties(&population) {
        return Err(format!("{}: first settle diverged", model.name()));
    }
    if outcome.patched {
        return Err(format!("{}: first settle cannot patch", model.name()));
    }
    for (step_no, step) in scenario.steps.iter().enumerate() {
        let (next, delta) = step.apply(&population);
        // No `previous` hint: only the scratch can make this incremental.
        let (pens, outcome) = model.penalties_with_scratch(&next, &delta, None, scratch.as_mut());
        let full = model.penalties(&next);
        if pens != full {
            return Err(format!(
                "{}: settle {step_no} diverged under {delta:?}\n got {pens:?}\nwant {full:?}",
                model.name()
            ));
        }
        if outcome.patched {
            patched += 1;
        }
        if outcome.budget_fallback {
            budget += 1;
        }
        population = next;
    }
    Ok((patched, budget))
}

proptest! {
    /// Scratch-backed incremental == full recompute, bit-for-bit, across
    /// 40-settle sequences of arrival/departure/mixed batches, for all
    /// three specialized models — and the overwhelming majority of
    /// settles must actually be answered by patches (the scratch is not
    /// allowed to silently degrade to recompute-every-time).
    #[test]
    fn scratch_matches_full_recompute_across_settle_sequences(
        seed in 0u64..1_000_000_000,
        nodes in 4u32..12,
        initial in 0usize..12,
    ) {
        let scenario = ChurnScenario::generate(seed, nodes, initial, 40);
        for kind in [ModelKind::GigabitEthernet, ModelKind::Infiniband, ModelKind::Myrinet] {
            let model = kind.build();
            let (patched, budget) = check_scenario(&model, &scenario)?;
            // Every warm settle must be answered by a patch — except
            // Myrinet settles whose population legitimately fails the
            // Moon-Moser certification (dense drifting populations can
            // outgrow the budget); nothing may fail silently.
            prop_assert!(
                patched + budget == 40,
                "{kind}: {patched} patched + {budget} budget refusals != 40"
            );
            if kind != ModelKind::Myrinet {
                prop_assert!(budget == 0, "{kind}: closed forms have no budget");
            }
        }
    }

    /// The `SharedNode` ablation rule drives a different arrival-marking
    /// table in the Myrinet component patch (flows conflict through *any*
    /// shared endpoint, in any role): same bit-for-bit pin, and every
    /// non-patched settle must be a visible budget refusal — SharedNode
    /// merges components aggressively, so refusals are legitimate.
    #[test]
    fn shared_node_rule_scratch_matches_full_recompute(
        seed in 0u64..1_000_000_000,
        nodes in 4u32..12,
        initial in 0usize..10,
    ) {
        let scenario = ChurnScenario::generate(seed, nodes, initial, 30);
        let model = MyrinetModel::with_rule(netbw_graph::conflict::ConflictRule::SharedNode);
        let (patched, budget) = check_scenario(&model, &scenario)?;
        prop_assert!(
            patched + budget == 30,
            "shared-node: {patched} patched + {budget} budget refusals != 30"
        );
    }

    /// Same sequences through a budget-starved Myrinet: the certification
    /// must refuse every reuse (nothing patches), and the answers must
    /// still match the (fallback-regime) full evaluation exactly.
    #[test]
    fn budget_starved_myrinet_stays_exact_without_patching(
        seed in 0u64..1_000_000_000,
        nodes in 4u32..10,
    ) {
        let scenario = ChurnScenario::generate(seed, nodes, 8, 15);
        let model = MyrinetModel::with_budget(2);
        let (patched, budget) = check_scenario(&model, &scenario)?;
        // With an 8-flow initial population over ≤9 nodes some component
        // exceeds the Moon-Moser budget of 2 almost always; settles whose
        // population certifies may legitimately patch, but every refusal
        // must be visible as a budget fallback.
        prop_assert!(patched + budget == 15, "{patched} + {budget} != 15");
    }
}

/// One conflict component's slice of the sharded mirror: its own scratch
/// (never shared with another component), the per-shard population of the
/// last settle, where those flows sat in the global population, and the
/// answers of the last settle (reused verbatim when a step leaves the
/// shard untouched).
struct MirrorShard {
    scratch: Box<dyn ModelScratch>,
    comms: Vec<Communication>,
    global: Vec<usize>,
    pens: Vec<Penalty>,
    needs_rebuild: bool,
}

impl MirrorShard {
    fn new<M: PenaltyModel>(model: &M) -> Self {
        MirrorShard {
            scratch: model.new_scratch(),
            comms: Vec::new(),
            global: Vec::new(),
            pens: Vec::new(),
            needs_rebuild: true,
        }
    }
}

/// What the sharded mirror did across a scenario, per shard-settle.
#[derive(Debug, Default, PartialEq, Eq)]
struct ShardedTally {
    /// Positional shard settles the model answered with a patch.
    patched: u64,
    /// Positional shard settles the model refused on budget grounds.
    budget: u64,
    /// Positional shard settles offered to the model (`patched + budget`
    /// must equal this: nothing may silently degrade to a recompute).
    warm: u64,
    /// Shard settles served as `Rebuilt` (first settle of a fresh shard,
    /// or the surviving shard of a bridge merge).
    rebuilt: u64,
    /// Shard settles skipped entirely because the step left the shard's
    /// membership untouched — component locality in its purest form.
    reused: u64,
    /// Most components alive at once (sanity: the mirror actually sharded).
    peak_components: usize,
}

/// Drives a scenario through a *sharded* mirror of the fluid engine's
/// partition: one scratch per conflict component ([`ComponentTracker`]
/// root), per-shard positional deltas mapped down from the global step,
/// a `Rebuilt` for the surviving shard of every bridge merge, and answers
/// scattered back to global positions. Every settle's scatter must equal
/// the stateless full evaluation over the *whole* population bit-for-bit —
/// the component-locality invariant the sharded engine rests on, here
/// pinned with the scratch state carried across settles per shard.
fn check_scenario_sharded<M: PenaltyModel>(
    model: &M,
    scenario: &ChurnScenario,
) -> Result<ShardedTally, String> {
    let mut tracker = ComponentTracker::new();
    let mut shards: HashMap<ComponentRoot, MirrorShard> = HashMap::new();
    let mut population: Vec<Communication> = Vec::new();
    let mut tally = ShardedTally::default();
    // The initial population is just the first settle's arrival batch.
    let initial_step = ChurnStep {
        departed: Vec::new(),
        arrived: scenario.initial.iter().copied().enumerate().collect(),
    };
    for (step_no, step) in std::iter::once(&initial_step)
        .chain(scenario.steps.iter())
        .enumerate()
    {
        let (next, _) = step.apply(&population);
        // Arrivals update the component structure; a bridge retires the
        // absorbed shard (its scratch is dropped, exactly like the engine)
        // and forces the surviving shard to rebuild.
        for &(_, comm) in &step.arrived {
            match tracker.insert(comm.src, comm.dst) {
                ComponentChange::Created { root } => {
                    shards.insert(root, MirrorShard::new(model));
                }
                ComponentChange::Joined { .. } => {}
                ComponentChange::Bridged { root, absorbed } => {
                    shards.remove(&absorbed);
                    shards
                        .get_mut(&root)
                        .expect("bridge winner has a shard")
                        .needs_rebuild = true;
                }
            }
        }
        tally.peak_components = tally.peak_components.max(tracker.component_count());
        // Group the new population by component root (global order kept
        // inside each group, mirroring the engine's slot-index order).
        let mut groups: BTreeMap<ComponentRoot, (Vec<Communication>, Vec<usize>)> = BTreeMap::new();
        for (g, &c) in next.iter().enumerate() {
            let root = tracker.find(c.src).expect("arrived flows are interned");
            let e = groups.entry(root).or_default();
            e.0.push(c);
            e.1.push(g);
        }
        // Map the global step down to per-shard positional deltas.
        let mut departed: BTreeMap<ComponentRoot, Vec<usize>> = BTreeMap::new();
        for &p in &step.departed {
            let root = tracker
                .find(population[p].src)
                .expect("departing flows are interned");
            if shards[&root].needs_rebuild {
                continue; // the rebuild supersedes the positional delta
            }
            let pos = shards[&root]
                .global
                .iter()
                .position(|&q| q == p)
                .ok_or_else(|| format!("settle {step_no}: departure {p} missing from its shard"))?;
            departed.entry(root).or_default().push(pos);
        }
        let mut arrived: BTreeMap<ComponentRoot, Vec<usize>> = BTreeMap::new();
        for &(i, comm) in &step.arrived {
            let root = tracker.find(comm.src).expect("just inserted");
            if shards[&root].needs_rebuild {
                continue;
            }
            let pos = groups[&root]
                .1
                .iter()
                .position(|&g| g == i)
                .expect("arrival is in its own group");
            arrived.entry(root).or_default().push(pos);
        }
        // Settle every shard the step touched; scatter the per-shard
        // answers back into global positions.
        let mut scattered: Vec<Option<Penalty>> = vec![None; next.len()];
        let roots: std::collections::BTreeSet<ComponentRoot> = groups
            .keys()
            .copied()
            .chain(departed.keys().copied()) // shards emptied by this step
            .collect();
        for root in roots {
            let (comms, global) = groups.remove(&root).unwrap_or_default();
            let sh = shards.get_mut(&root).expect("grouped flows have a shard");
            let dep = departed.remove(&root).unwrap_or_default();
            let arr = arrived.remove(&root).unwrap_or_default();
            let delta = if sh.needs_rebuild {
                PopulationDelta::Rebuilt
            } else {
                match (dep.is_empty(), arr.is_empty()) {
                    (true, true) => {
                        // Untouched shard: last settle's answers stand.
                        tally.reused += 1;
                        debug_assert_eq!(sh.comms, comms);
                        for (k, &g) in global.iter().enumerate() {
                            scattered[g] = Some(sh.pens[k]);
                        }
                        sh.global = global;
                        continue;
                    }
                    (true, false) => PopulationDelta::Arrived(arr),
                    (false, true) => PopulationDelta::Departed(dep),
                    (false, false) => PopulationDelta::Mixed {
                        departed: dep,
                        arrived: arr,
                    },
                }
            };
            let warm = !matches!(delta, PopulationDelta::Rebuilt);
            let (pens, outcome) =
                model.penalties_with_scratch(&comms, &delta, None, sh.scratch.as_mut());
            if warm {
                tally.warm += 1;
                if outcome.patched {
                    tally.patched += 1;
                }
                if outcome.budget_fallback {
                    tally.budget += 1;
                }
            } else {
                tally.rebuilt += 1;
                if outcome.patched {
                    return Err(format!("settle {step_no}: a rebuild cannot patch"));
                }
            }
            for (k, &g) in global.iter().enumerate() {
                scattered[g] = Some(pens[k]);
            }
            sh.comms = comms;
            sh.global = global;
            sh.pens = pens;
            sh.needs_rebuild = false;
        }
        let scattered: Vec<Penalty> = scattered
            .into_iter()
            .map(|p| p.expect("groups partition the population"))
            .collect();
        let full = model.penalties(&next);
        if scattered != full {
            return Err(format!(
                "{}: settle {step_no} sharded scatter diverged\n got {scattered:?}\nwant {full:?}",
                model.name()
            ));
        }
        population = next;
    }
    Ok(tally)
}

proptest! {
    /// The sharded mirror == the stateless full recompute, bit-for-bit,
    /// across 40-settle sequences for all three specialized models, with
    /// per-shard scratch state carried between settles and every warm
    /// shard settle visibly patched or visibly budget-refused.
    #[test]
    fn sharded_scratches_match_full_recompute_across_settle_sequences(
        seed in 0u64..1_000_000_000,
        nodes in 6u32..16,
        initial in 0usize..12,
    ) {
        let scenario = ChurnScenario::generate(seed, nodes, initial, 40);
        for kind in [ModelKind::GigabitEthernet, ModelKind::Infiniband, ModelKind::Myrinet] {
            let model = kind.build();
            let tally = check_scenario_sharded(&model, &scenario)?;
            prop_assert_eq!(
                tally.patched + tally.budget, tally.warm,
                "{}: every warm shard settle must patch or visibly refuse: {:?}",
                kind, tally
            );
            if kind != ModelKind::Myrinet {
                prop_assert_eq!(tally.budget, 0, "{}: closed forms have no budget", kind);
            }
        }
    }

    /// The sharded mirror through a budget-starved Myrinet: per-shard
    /// populations are smaller than the global one, so *more* settles
    /// certify under the budget than in the unsharded run — but every
    /// refusal must still be visible and every answer bit-for-bit equal
    /// to the (fallback-regime) full evaluation.
    #[test]
    fn budget_starved_myrinet_sharded_mirror_stays_exact(
        seed in 0u64..1_000_000_000,
        nodes in 4u32..10,
    ) {
        let scenario = ChurnScenario::generate(seed, nodes, 8, 15);
        let model = MyrinetModel::with_budget(2);
        let tally = check_scenario_sharded(&model, &scenario)?;
        prop_assert_eq!(
            tally.patched + tally.budget, tally.warm,
            "starved shards must patch or visibly refuse: {:?}", tally
        );
    }
}

#[test]
fn sharded_mirror_bridges_rebuilds_and_resurrects_deterministically() {
    // A handcrafted scenario walking the mirror through every shard
    // lifecycle edge: two initial components, a third created mid-run, a
    // bridge merge (winner rebuilds, loser's scratch is dropped), a shard
    // draining to empty, and flows arriving back into the emptied shard
    // (patched from an empty previous population, not rebuilt).
    let c = |s: u32, d: u32| Communication::new(s, d, 500);
    let scenario = ChurnScenario {
        initial: vec![c(0, 1), c(2, 3)],
        steps: vec![
            // a third component appears
            ChurnStep {
                departed: vec![],
                arrived: vec![(2, c(4, 5))],
            },
            // a bridge flow merges {0,1} and {2,3}: the winner rebuilds
            ChurnStep {
                departed: vec![],
                arrived: vec![(1, c(1, 2))],
            },
            // the merged shard shrinks (population [c01,c12,c23,c45])
            ChurnStep {
                departed: vec![0],
                arrived: vec![],
            },
            // the {4,5} shard drains to empty (population [c12,c23,c45])
            ChurnStep {
                departed: vec![2],
                arrived: vec![],
            },
            // and is resurrected by a new flow on its endpoints
            ChurnStep {
                departed: vec![],
                arrived: vec![(2, c(4, 6))],
            },
        ],
    };
    for kind in [
        ModelKind::GigabitEthernet,
        ModelKind::Infiniband,
        ModelKind::Myrinet,
    ] {
        let model = kind.build();
        let tally = check_scenario_sharded(&model, &scenario).unwrap();
        // Rebuilds: the two initial shards, the {4,5} creation, and the
        // bridge winner. Warm settles: the merged shard's departure, the
        // {4,5} drain-to-empty, and the resurrection arrival.
        assert_eq!(tally.rebuilt, 4, "{kind}: {tally:?}");
        assert_eq!(tally.warm, 3, "{kind}: {tally:?}");
        assert_eq!(tally.patched + tally.budget, 3, "{kind}: {tally:?}");
        assert_eq!(tally.peak_components, 3, "{kind}: {tally:?}");
        assert!(
            tally.reused >= 3,
            "untouched shards must be reused: {tally:?}"
        );
    }
}

#[test]
fn specialized_models_patch_mixed_batches() {
    // A deterministic pin (independent of the proptest RNG) that chained
    // mixed deltas are patched — not just accepted — by all three
    // specialized models.
    let scenario = ChurnScenario::generate(1234, 8, 6, 30);
    let mixed_steps = scenario
        .steps
        .iter()
        .filter(|s| !s.departed.is_empty() && !s.arrived.is_empty())
        .count();
    assert!(mixed_steps > 0, "seed 1234 must produce mixed steps");
    let gige = GigabitEthernetModel::default();
    let ib = InfinibandModel::default();
    let myrinet = MyrinetModel::default();
    assert_eq!(check_scenario(&gige, &scenario), Ok((30, 0)));
    assert_eq!(check_scenario(&ib, &scenario), Ok((30, 0)));
    assert_eq!(check_scenario(&myrinet, &scenario), Ok((30, 0)));
}
