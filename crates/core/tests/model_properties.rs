//! Property-based tests for the penalty models.

use netbw_core::states::{count_components, enumerate_components, DEFAULT_STATE_SET_BUDGET};
use netbw_core::{
    GigabitEthernetModel, InfinibandModel, MyrinetModel, PenaltyModel, PopulationDelta,
};
use netbw_graph::conflict::{ConflictGraph, ConflictRule};
use netbw_graph::Communication;
use proptest::prelude::*;

fn arb_comms() -> impl Strategy<Value = Vec<Communication>> {
    proptest::collection::vec((0u32..7, 0u32..6, 1u64..1000), 1..10).prop_map(|raw| {
        raw.into_iter()
            .map(|(s, d_raw, size)| {
                let d = if d_raw >= s { d_raw + 1 } else { d_raw };
                Communication::new(s, d, size)
            })
            .collect()
    })
}

proptest! {
    /// The GigE model is permutation-equivariant: shuffling the input
    /// shuffles the output identically.
    #[test]
    fn gige_is_permutation_equivariant(comms in arb_comms(), seed in 0u64..100) {
        let model = GigabitEthernetModel::default();
        let base = model.penalties(&comms);
        // deterministic pseudo-shuffle
        let mut idx: Vec<usize> = (0..comms.len()).collect();
        let n = idx.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            idx.swap(i, j);
        }
        let shuffled: Vec<Communication> = idx.iter().map(|&i| comms[i]).collect();
        let p2 = model.penalties(&shuffled);
        for (k, &i) in idx.iter().enumerate() {
            prop_assert!((p2[k].value() - base[i].value()).abs() < 1e-12);
        }
    }

    /// Duplicating the whole scheme onto disjoint fresh nodes leaves every
    /// penalty unchanged (models are local to conflict structure).
    #[test]
    fn disjoint_copies_do_not_interact(comms in arb_comms()) {
        let shift = 100u32;
        let mut doubled = comms.clone();
        doubled.extend(
            comms
                .iter()
                .map(|c| Communication::new(c.src.0 + shift, c.dst.0 + shift, c.size)),
        );
        for model in [
            Box::new(GigabitEthernetModel::default()) as Box<dyn PenaltyModel>,
            Box::new(MyrinetModel::default()),
            Box::new(InfinibandModel::default()),
        ] {
            let base = model.penalties(&comms);
            let both = model.penalties(&doubled);
            for i in 0..comms.len() {
                prop_assert!(
                    (both[i].value() - base[i].value()).abs() < 1e-12,
                    "{}: comm {i}: {} vs {}",
                    model.name(),
                    both[i].value(),
                    base[i].value()
                );
                prop_assert!(
                    (both[comms.len() + i].value() - base[i].value()).abs() < 1e-12
                );
            }
        }
    }

    /// Counting and enumerating state sets agree everywhere.
    #[test]
    fn counting_equals_enumeration(comms in arb_comms()) {
        let cg = ConflictGraph::build(&comms, ConflictRule::Strict);
        let full = enumerate_components(&cg, DEFAULT_STATE_SET_BUDGET).unwrap();
        let fast = count_components(&cg, DEFAULT_STATE_SET_BUDGET).unwrap();
        prop_assert_eq!(full.len(), fast.len());
        for (e, c) in full.iter().zip(&fast) {
            prop_assert_eq!(e.count() as u64, c.count);
            for (i, &v) in c.vertices.iter().enumerate() {
                prop_assert_eq!(e.emission(v) as u64, c.emission[i]);
            }
        }
    }

    /// Under the Myrinet model, all outgoing comms of one node share the
    /// same penalty (fair NIC sharing via the minimum coefficient).
    #[test]
    fn myrinet_same_source_same_penalty(comms in arb_comms()) {
        let model = MyrinetModel::default();
        let p = model.penalties(&comms);
        for i in 0..comms.len() {
            for j in 0..comms.len() {
                if comms[i].src == comms[j].src
                    && !comms[i].is_intra_node()
                    && !comms[j].is_intra_node()
                {
                    // same source ⇒ same component ⇒ same S and same κ
                    prop_assert!(
                        (p[i].value() - p[j].value()).abs() < 1e-12,
                        "comms {i},{j} share source but differ: {} vs {}",
                        p[i].value(),
                        p[j].value()
                    );
                }
            }
        }
    }

    /// β scales the GigE conflicted penalties linearly.
    #[test]
    fn gige_beta_scaling(k in 2usize..6) {
        let low = GigabitEthernetModel::new(0.6, 0.0, 0.0);
        let high = GigabitEthernetModel::new(0.9, 0.0, 0.0);
        let g = netbw_graph::schemes::outgoing_ladder(k);
        let pl = low.penalties(g.comms())[0].value();
        let ph = high.penalties(g.comms())[0].value();
        prop_assert!((ph / pl - 0.9 / 0.6).abs() < 1e-9);
    }

    /// Round-trip equivalence of the incremental entry point: over a
    /// random churn sequence (arrivals at random positions, departures of
    /// random subsets), `penalties_after_change` fed with the previous
    /// *patched* result must match the full `penalties` evaluation
    /// **bit-for-bit** at every step, for every specialized model.
    #[test]
    fn incremental_matches_full_on_random_churn(
        steps in proptest::collection::vec((0u8..4, (0u32..8, 0u32..8, 1u64..100), 0u64..1_000_000), 1..24)
    ) {
        let models: Vec<Box<dyn PenaltyModel>> = vec![
            Box::new(GigabitEthernetModel::default()),
            Box::new(MyrinetModel::default()),
            Box::new(InfinibandModel::default()),
        ];
        for model in &models {
            let mut population: Vec<Communication> = Vec::new();
            let mut penalties = model.penalties(&population);
            for &(kind, (src, dst, size), pick) in &steps {
                let previous = (population.clone(), penalties.clone());
                let delta = if population.is_empty() || kind < 2 {
                    // arrival at a pseudo-random position (intra-node
                    // allowed: src may equal dst)
                    let pos = (pick as usize) % (population.len() + 1);
                    population.insert(pos, Communication::new(src, dst, size));
                    PopulationDelta::Arrived(vec![pos])
                } else {
                    // departure of 1..=2 pseudo-random positions
                    let count = 1 + (kind as usize - 2).min(population.len() - 1);
                    let mut idx: Vec<usize> = (0..count)
                        .map(|i| (pick as usize).wrapping_mul(31).wrapping_add(i * 7) % population.len())
                        .collect();
                    idx.sort_unstable();
                    idx.dedup();
                    for &i in idx.iter().rev() {
                        population.remove(i);
                    }
                    PopulationDelta::Departed(idx)
                };
                let patched = model.penalties_after_change(
                    &population,
                    delta,
                    Some((&previous.0, &previous.1)),
                );
                let full = model.penalties(&population);
                prop_assert_eq!(
                    &patched,
                    &full,
                    "{}: population {:?}",
                    model.name(),
                    &population
                );
                penalties = patched;
            }
        }
    }

    /// The Myrinet patch must stay exact in the budget-fallback regime
    /// too: with a tiny enumeration budget the certification refuses to
    /// reuse and the patched answer still equals the full one.
    #[test]
    fn myrinet_incremental_exact_under_tiny_budget(
        comms in arb_comms(),
        arrival in (0u32..8, 0u32..8, 1u64..100)
    ) {
        let model = MyrinetModel::with_budget(2);
        let prev_pens = model.penalties(&comms);
        let mut grown = comms.clone();
        grown.push(Communication::new(arrival.0, arrival.1, arrival.2));
        let patched = model.penalties_after_change(
            &grown,
            PopulationDelta::Arrived(vec![grown.len() - 1]),
            Some((&comms, &prev_pens)),
        );
        prop_assert_eq!(&patched, &model.penalties(&grown));
    }
}
