//! Property-based tests for the penalty models.

use netbw_core::states::{count_components, enumerate_components, DEFAULT_STATE_SET_BUDGET};
use netbw_core::{GigabitEthernetModel, InfinibandModel, MyrinetModel, PenaltyModel};
use netbw_graph::conflict::{ConflictGraph, ConflictRule};
use netbw_graph::Communication;
use proptest::prelude::*;

fn arb_comms() -> impl Strategy<Value = Vec<Communication>> {
    proptest::collection::vec((0u32..7, 0u32..6, 1u64..1000), 1..10).prop_map(|raw| {
        raw.into_iter()
            .map(|(s, d_raw, size)| {
                let d = if d_raw >= s { d_raw + 1 } else { d_raw };
                Communication::new(s, d, size)
            })
            .collect()
    })
}

proptest! {
    /// The GigE model is permutation-equivariant: shuffling the input
    /// shuffles the output identically.
    #[test]
    fn gige_is_permutation_equivariant(comms in arb_comms(), seed in 0u64..100) {
        let model = GigabitEthernetModel::default();
        let base = model.penalties(&comms);
        // deterministic pseudo-shuffle
        let mut idx: Vec<usize> = (0..comms.len()).collect();
        let n = idx.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            idx.swap(i, j);
        }
        let shuffled: Vec<Communication> = idx.iter().map(|&i| comms[i]).collect();
        let p2 = model.penalties(&shuffled);
        for (k, &i) in idx.iter().enumerate() {
            prop_assert!((p2[k].value() - base[i].value()).abs() < 1e-12);
        }
    }

    /// Duplicating the whole scheme onto disjoint fresh nodes leaves every
    /// penalty unchanged (models are local to conflict structure).
    #[test]
    fn disjoint_copies_do_not_interact(comms in arb_comms()) {
        let shift = 100u32;
        let mut doubled = comms.clone();
        doubled.extend(
            comms
                .iter()
                .map(|c| Communication::new(c.src.0 + shift, c.dst.0 + shift, c.size)),
        );
        for model in [
            Box::new(GigabitEthernetModel::default()) as Box<dyn PenaltyModel>,
            Box::new(MyrinetModel::default()),
            Box::new(InfinibandModel::default()),
        ] {
            let base = model.penalties(&comms);
            let both = model.penalties(&doubled);
            for i in 0..comms.len() {
                prop_assert!(
                    (both[i].value() - base[i].value()).abs() < 1e-12,
                    "{}: comm {i}: {} vs {}",
                    model.name(),
                    both[i].value(),
                    base[i].value()
                );
                prop_assert!(
                    (both[comms.len() + i].value() - base[i].value()).abs() < 1e-12
                );
            }
        }
    }

    /// Counting and enumerating state sets agree everywhere.
    #[test]
    fn counting_equals_enumeration(comms in arb_comms()) {
        let cg = ConflictGraph::build(&comms, ConflictRule::Strict);
        let full = enumerate_components(&cg, DEFAULT_STATE_SET_BUDGET).unwrap();
        let fast = count_components(&cg, DEFAULT_STATE_SET_BUDGET).unwrap();
        prop_assert_eq!(full.len(), fast.len());
        for (e, c) in full.iter().zip(&fast) {
            prop_assert_eq!(e.count() as u64, c.count);
            for (i, &v) in c.vertices.iter().enumerate() {
                prop_assert_eq!(e.emission(v) as u64, c.emission[i]);
            }
        }
    }

    /// Under the Myrinet model, all outgoing comms of one node share the
    /// same penalty (fair NIC sharing via the minimum coefficient).
    #[test]
    fn myrinet_same_source_same_penalty(comms in arb_comms()) {
        let model = MyrinetModel::default();
        let p = model.penalties(&comms);
        for i in 0..comms.len() {
            for j in 0..comms.len() {
                if comms[i].src == comms[j].src
                    && !comms[i].is_intra_node()
                    && !comms[j].is_intra_node()
                {
                    // same source ⇒ same component ⇒ same S and same κ
                    prop_assert!(
                        (p[i].value() - p[j].value()).abs() < 1e-12,
                        "comms {i},{j} share source but differ: {} vs {}",
                        p[i].value(),
                        p[j].value()
                    );
                }
            }
        }
    }

    /// β scales the GigE conflicted penalties linearly.
    #[test]
    fn gige_beta_scaling(k in 2usize..6) {
        let low = GigabitEthernetModel::new(0.6, 0.0, 0.0);
        let high = GigabitEthernetModel::new(0.9, 0.0, 0.0);
        let g = netbw_graph::schemes::outgoing_ladder(k);
        let pl = low.penalties(g.comms())[0].value();
        let ph = high.penalties(g.comms())[0].value();
        prop_assert!((ph / pl - 0.9 / 0.6).abs() < 1e-9);
    }
}
