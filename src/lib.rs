//! # netbw — predictive models for bandwidth sharing in HPC clusters
//!
//! A from-scratch reproduction of *Vienne, Martinasso, Vincent, Méhaut —
//! "Predictive models for bandwidth sharing in high performance clusters",
//! IEEE Cluster 2008* (HAL hal-00953618), as a production-grade Rust
//! workspace.
//!
//! Concurrent MPI communications contend for NIC and link bandwidth; the
//! penalty `P = T/Tref` measures how much slower each transfer runs than
//! it would alone. The paper contributes two predictive models — a
//! quantitative one for Gigabit Ethernet/TCP and a state-enumeration one
//! for Myrinet 2000's Stop & Go flow control — embedded in a trace-driven
//! cluster simulator and validated on synthetic graphs and HPL/Linpack.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `netbw-graph` | communication graphs, conflict taxonomy, scheme DSL, generators |
//! | [`core`] | `netbw-core` | the penalty models (GigE, Myrinet, InfiniBand-extension, baselines) and calibration |
//! | [`fluid`] | `netbw-fluid` | progressive solver: penalties → completion times |
//! | [`sim`] | `netbw-sim` | trace-driven cluster simulator (placement, MPI semantics) |
//! | [`packet`] | `netbw-packet` | packet-level fabric simulators (the "hardware") |
//! | [`workloads`] | `netbw-workloads` | HPL trace generator, synthetic batteries |
//! | [`trace`] | `netbw-trace` | MPE-like event trace format |
//! | [`eval`] | `netbw-eval` | Erel/Eabs metrics, measured-vs-predicted experiments, sweep execution engine |
//! | [`serve`] | `netbw-serve` | long-running what-if service: speculative placement queries on warm forked engine state |
//!
//! ## Quickstart
//!
//! ```
//! use netbw::prelude::*;
//!
//! // the paper's Fig. 5 scheme, and its Fig. 6 penalties
//! let scheme = netbw::graph::schemes::fig5();
//! let model = MyrinetModel::default();
//! let penalties = model.penalties(scheme.comms());
//! assert_eq!(penalties[0].value(), 5.0);
//!
//! // completion times through the fluid solver
//! let mut solver = FluidSolver::new(model, NetworkParams::myrinet2000());
//! let times = solver.solve(&scheme);
//! assert!(times[0].completion > times[3].completion);
//! ```

pub use netbw_core as core;
pub use netbw_eval as eval;
pub use netbw_fluid as fluid;
pub use netbw_graph as graph;
pub use netbw_packet as packet;
pub use netbw_serve as serve;
pub use netbw_sim as sim;
pub use netbw_trace as trace;
pub use netbw_workloads as workloads;

/// One-stop import of the items most programs need.
pub mod prelude {
    pub use netbw_core::prelude::*;
    pub use netbw_eval::{compare_hpl, compare_scheme, fig2_table, EvalSession, SweepStats, Table};
    pub use netbw_fluid::{FluidNetwork, FluidSolver, NetworkParams};
    pub use netbw_graph::prelude::*;
    pub use netbw_packet::{FabricConfig, PacketFabric, PacketNetwork};
    pub use netbw_serve::{ServeConfig, WhatIfQuery, WhatIfService};
    pub use netbw_sim::{ClusterSpec, Placement, PlacementPolicy, Simulator};
    pub use netbw_trace::{Event, TaskTrace, Trace};
    pub use netbw_workloads::HplConfig;
}
