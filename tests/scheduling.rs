//! Scheduling-policy invariants (§VI.D) across cluster shapes.

use netbw::graph::NodeId;
use netbw::prelude::*;

fn loads(p: &Placement, nodes: usize) -> Vec<usize> {
    let mut l = vec![0usize; nodes];
    for n in p.as_slice() {
        l[n.idx()] += 1;
    }
    l
}

#[test]
fn every_policy_respects_capacity_across_shapes() {
    for nodes in [1usize, 2, 3, 8, 16] {
        for cores in [1usize, 2, 4] {
            let cluster = ClusterSpec::smp(nodes).with_cores(cores);
            for tasks in [1usize, nodes, nodes * cores] {
                for policy in [
                    PlacementPolicy::RoundRobinNode,
                    PlacementPolicy::RoundRobinProcessor,
                    PlacementPolicy::Random(99),
                ] {
                    if tasks > cluster.capacity() {
                        continue;
                    }
                    let p = Placement::assign(&policy, tasks, &cluster);
                    assert_eq!(p.len(), tasks);
                    for (node, load) in loads(&p, nodes).iter().enumerate() {
                        assert!(
                            *load <= cores,
                            "{policy}: node {node} holds {load} > {cores} tasks \
                             ({nodes}n x {cores}c, {tasks}t)"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn rrn_spreads_maximally_and_rrp_packs_maximally() {
    let cluster = ClusterSpec::smp(8); // 8 × 2 cores
    let rrn = Placement::assign(&PlacementPolicy::RoundRobinNode, 8, &cluster);
    // 8 tasks on 8 nodes: RRN gives one task per node
    assert!(loads(&rrn, 8).iter().all(|&l| l == 1));
    let rrp = Placement::assign(&PlacementPolicy::RoundRobinProcessor, 8, &cluster);
    // RRP fills 4 nodes completely, leaves 4 empty
    let l = loads(&rrp, 8);
    assert_eq!(l.iter().filter(|&&x| x == 2).count(), 4);
    assert_eq!(l.iter().filter(|&&x| x == 0).count(), 4);
}

#[test]
fn random_placements_differ_across_seeds_but_not_runs() {
    let cluster = ClusterSpec::smp(8);
    let a = Placement::assign(&PlacementPolicy::Random(1), 16, &cluster);
    let b = Placement::assign(&PlacementPolicy::Random(1), 16, &cluster);
    assert_eq!(a, b);
    let distinct = (2u64..12)
        .map(|s| Placement::assign(&PlacementPolicy::Random(s), 16, &cluster))
        .filter(|p| *p != a)
        .count();
    assert!(distinct >= 8, "only {distinct} of 10 seeds differed");
}

#[test]
fn placement_changes_predicted_comm_time_on_a_ring() {
    // a ring of 8 tasks over 4 two-core nodes: RRP halves network traffic
    let mut trace = Trace::with_tasks(8);
    for r in 0..8usize {
        // cycle-breaking rendezvous order (rank 0 receives first)
        if r == 0 {
            trace.task_mut(r).recv(7u32, 4_000_000);
            trace.task_mut(r).send(1u32, 4_000_000);
        } else {
            trace.task_mut(r).send(((r + 1) % 8) as u32, 4_000_000);
            trace.task_mut(r).recv((r - 1) as u32, 4_000_000);
        }
    }
    let cluster = ClusterSpec::smp(4);
    let run = |policy: &PlacementPolicy| {
        let placement = Placement::assign(policy, 8, &cluster);
        let backend = FluidNetwork::new(MyrinetModel::default(), NetworkParams::myrinet2000());
        Simulator::new(&trace, cluster, placement, backend)
            .run()
            .unwrap()
    };
    let rrn = run(&PlacementPolicy::RoundRobinNode);
    let rrp = run(&PlacementPolicy::RoundRobinProcessor);
    let inter = |r: &netbw::sim::SimReport| r.messages.iter().filter(|m| !m.intra_node).count();
    assert_eq!(inter(&rrn), 8);
    assert_eq!(inter(&rrp), 4);
    assert!(rrp.makespan() <= rrn.makespan() + 1e-9);
}

#[test]
fn explicit_placement_round_trips() {
    let cluster = ClusterSpec::smp(3);
    let map = vec![NodeId(2), NodeId(0), NodeId(2), NodeId(1)];
    let p = Placement::assign(&PlacementPolicy::Explicit(map.clone()), 4, &cluster);
    assert_eq!(p.as_slice(), map.as_slice());
    assert_eq!(p.node_of(2), NodeId(2));
}
