//! Property-based tests over the core invariants (proptest).

use netbw::core::states::{enumerate_components, DEFAULT_STATE_SET_BUDGET};
use netbw::graph::conflict::{ConflictGraph, ConflictRule};
use netbw::graph::{schemes, Communication};
use netbw::prelude::*;
use proptest::prelude::*;

/// Strategy: a random scheme of up to 9 comms over up to 7 nodes with
/// bounded degrees (keeps enumeration small), no self-loops.
fn arb_scheme() -> impl Strategy<Value = Vec<Communication>> {
    proptest::collection::vec((0u32..7, 0u32..6, 1u64..1000), 1..9).prop_map(|raw| {
        raw.into_iter()
            .map(|(s, d_raw, size)| {
                let d = if d_raw >= s { d_raw + 1 } else { d_raw };
                Communication::new(s, d, size)
            })
            .collect()
    })
}

proptest! {
    /// Every model returns one penalty per communication, each ≥ 1 and finite.
    #[test]
    fn penalties_are_aligned_finite_and_at_least_one(comms in arb_scheme()) {
        for kind in netbw::core::ModelKind::ALL {
            let model = kind.build();
            let p = model.penalties(&comms);
            prop_assert_eq!(p.len(), comms.len());
            for x in &p {
                prop_assert!(x.value().is_finite());
                prop_assert!(x.value() >= 1.0);
            }
        }
    }

    /// State sets are independent, maximal within their component, and
    /// every communication sends in at least one set of its component.
    #[test]
    fn state_sets_are_maximal_independent(comms in arb_scheme()) {
        let cg = ConflictGraph::build(&comms, ConflictRule::Strict);
        let comps = enumerate_components(&cg, DEFAULT_STATE_SET_BUDGET).unwrap();
        for e in &comps {
            prop_assert!(e.count() >= 1);
            for set in &e.sets {
                prop_assert!(cg.is_independent(set));
                // maximal within the component: every non-member vertex of
                // this component conflicts with some member
                for &v in &e.vertices {
                    if !set.contains(v) {
                        prop_assert!(!cg.neighbours(v).is_disjoint(set),
                            "vertex {} could still send", v);
                    }
                }
            }
            for &v in &e.vertices {
                prop_assert!(e.emission(v) >= 1);
            }
        }
        // global enumeration produces globally maximal sets
        let global = netbw::core::states::enumerate_global(&cg, DEFAULT_STATE_SET_BUDGET).unwrap();
        for set in &global.sets {
            prop_assert!(cg.is_maximal_independent(set));
        }
    }

    /// Myrinet penalty lower bound: every comm's penalty is at least the
    /// number of outgoing comms sharing its source (NIC serialization),
    /// because κ ≤ σ and the source's comms partition the state sets.
    #[test]
    fn myrinet_penalty_at_least_source_degree_over_sigma(comms in arb_scheme()) {
        let model = MyrinetModel::default();
        let analysis = model.analyse(&comms);
        for (i, c) in comms.iter().enumerate() {
            if c.is_intra_node() { continue; }
            let k = analysis.network_indices.iter().position(|&x| x == i).unwrap();
            let sigma = analysis.emission[k];
            let s = analysis.state_count[k];
            // σ(c) ≤ S always; penalties = S/κ ≥ S/σ ≥ 1
            prop_assert!(sigma <= s);
            prop_assert!(analysis.penalties[i].value() >= s as f64 / sigma.max(1) as f64 - 1e-12);
        }
    }

    /// Fluid conservation: completion − start ≥ size/bandwidth (penalties
    /// never accelerate), and phases integrate to exactly the message size.
    #[test]
    fn fluid_conserves_bytes(comms in arb_scheme()) {
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let results = solver.solve_with_starts(&comms, &vec![0.0; comms.len()]);
        for (r, c) in results.iter().zip(&comms) {
            prop_assert!(r.elapsed() >= c.size as f64 - 1e-6);
            let moved: f64 = r.phases.iter().map(|p| p.duration() / p.penalty).sum();
            prop_assert!((moved - c.size as f64).abs() < 1e-4,
                "moved {} vs size {}", moved, c.size);
        }
    }

    /// Monotonicity: adding an outgoing conflict never speeds anyone up
    /// under the GigE model (ladder case).
    #[test]
    fn gige_ladder_monotone(k in 1usize..8) {
        let model = GigabitEthernetModel::default();
        let a = model.penalties(schemes::outgoing_ladder(k).comms())[0].value();
        let b = model.penalties(schemes::outgoing_ladder(k + 1).comms())[0].value();
        prop_assert!(b >= a - 1e-12, "ladder {k}: {a} -> {b}");
    }

    /// The DSL round-trips arbitrary schemes.
    #[test]
    fn dsl_round_trips(comms in arb_scheme()) {
        let mut g = netbw::graph::CommGraph::named("prop");
        for c in &comms {
            g.add_auto(c.src, c.dst, c.size);
        }
        let text = netbw::graph::dsl::emit(&g);
        let back = netbw::graph::dsl::parse(&text).unwrap();
        prop_assert_eq!(back, g);
    }

    /// The trace text format round-trips arbitrary small traces.
    #[test]
    fn trace_text_round_trips(
        events in proptest::collection::vec((0usize..4, 0u32..4, 1u64..10_000), 0..40)
    ) {
        let mut tr = netbw::trace::Trace::with_tasks(4);
        for (kind, peer, bytes) in events {
            match kind {
                0 => { tr.task_mut(peer as usize % 4).compute(bytes as f64 * 1e-3); }
                1 => { tr.task_mut(0).send(peer.clamp(1, 3), bytes); }
                2 => { tr.task_mut(peer as usize % 4).recv_any(bytes); }
                _ => { tr.task_mut(peer as usize % 4).barrier(); }
            }
        }
        let text = netbw::trace::write_trace(&tr);
        let back = netbw::trace::parse_trace(&text).unwrap();
        prop_assert_eq!(back, tr);
    }

    /// Packet fabrics conserve work: completion time of any flow is at
    /// least size/flow_cap and the run terminates (tested implicitly).
    #[test]
    fn packet_fabric_lower_bound(seed in 0u64..20) {
        let g = schemes::random_bounded(6, 6, 2, 2, 500_000, seed);
        if g.is_empty() { return Ok(()); }
        for cfg in [FabricConfig::gige(), FabricConfig::infinihost3()] {
            let mut fab = PacketFabric::new(cfg, 8);
            let times = fab.run_scheme(&g);
            for (t, c) in times.iter().zip(g.comms()) {
                let floor = c.size as f64 / cfg.flow_cap;
                prop_assert!(*t >= floor - 1e-9, "{}: {} < floor {}", cfg.name, t, floor);
            }
        }
    }
}
