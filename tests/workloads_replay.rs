//! Replay smoke tests: every workload generator must produce traces that
//! replay deadlock-free under strict blocking-rendezvous MPI semantics,
//! on every placement policy.

use netbw::prelude::*;
use netbw::workloads::{alltoall, pipeline, tree_broadcast, StencilConfig};

fn replay(trace: &Trace, nodes: usize) -> netbw::sim::SimReport {
    let cluster = ClusterSpec {
        nodes,
        cores_per_node: 2,
        mem_bandwidth: 1.5e9,
        eager_threshold: 0, // worst case: everything rendezvous
    };
    let placement = Placement::assign(&PlacementPolicy::RoundRobinNode, trace.len(), &cluster);
    let backend = FluidNetwork::new(MyrinetModel::default(), NetworkParams::myrinet2000());
    Simulator::new(trace, cluster, placement, backend)
        .run()
        .expect("trace must replay without deadlock")
}

#[test]
fn alltoall_replays_without_deadlock() {
    for p in [2usize, 3, 4, 6, 8] {
        let tr = alltoall(p, 4_000_000, 1);
        let report = replay(&tr, p);
        assert!(report.makespan() > 0.0, "P = {p}");
        // every block crossed the wire
        assert_eq!(report.messages.len(), p * (p - 1), "P = {p}");
    }
}

#[test]
fn alltoall_multi_round_replays() {
    let tr = alltoall(4, 1_000_000, 3);
    let report = replay(&tr, 4);
    assert_eq!(report.messages.len(), 3 * 4 * 3);
}

#[test]
fn stencil_replays_without_deadlock() {
    let tr = StencilConfig::small().trace();
    let report = replay(&tr, 4);
    assert!(report.makespan() > 0.0);
    // halo exchanges are bidirectional: income/outgo conflicts everywhere,
    // so at least some messages must have been slowed
    let p = report.message_penalties(NetworkParams::myrinet2000().bandwidth);
    assert!(p.iter().any(|&x| x > 1.5), "penalties {p:?}");
}

#[test]
fn broadcast_and_pipeline_replay() {
    for p in [2usize, 5, 8, 16] {
        let tr = tree_broadcast(p, 2_000_000);
        let report = replay(&tr, p.div_ceil(2).max(2));
        assert_eq!(report.messages.len(), p - 1, "P = {p}");
    }
    let tr = pipeline(5, 7, 1_000_000, 0.001);
    let report = replay(&tr, 3);
    assert_eq!(report.messages.len(), 7 * 4);
}

#[test]
fn hpl_small_replays_on_packet_backend_too() {
    let hpl = HplConfig {
        n: 512,
        nb: 128,
        tasks: 4,
        ..HplConfig::small()
    };
    let trace = hpl.trace();
    let cluster = ClusterSpec::smp(2);
    let placement = Placement::assign(&PlacementPolicy::RoundRobinNode, 4, &cluster);
    let backend = PacketNetwork::new(FabricConfig::myrinet2000().coarse(), cluster.nodes);
    let report = Simulator::new(&trace, cluster, placement, backend)
        .run()
        .expect("replays on the packet backend");
    assert!(report.makespan() > 0.0);
}
