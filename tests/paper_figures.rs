//! Regression tests pinning every number the paper prints that our
//! reproduction commits to (see DESIGN.md §1 for provenance).

use netbw::graph::schemes;
use netbw::prelude::*;

/// Fig. 6: the Myrinet penalty table, exactly.
#[test]
fn fig6_exact() {
    let model = MyrinetModel::default();
    let analysis = model.analyse(schemes::fig5().comms());
    assert_eq!(analysis.emission, vec![1, 2, 2, 2, 2, 3]);
    assert_eq!(analysis.coefficient, vec![1, 1, 1, 2, 2, 2]);
    let p: Vec<f64> = analysis.penalties.iter().map(|p| p.value()).collect();
    assert_eq!(p, vec![5.0, 5.0, 5.0, 2.5, 2.5, 2.5]);
    // and there are exactly 5 state sets in one component
    assert_eq!(analysis.components.len(), 1);
    assert_eq!(analysis.components[0].count(), 5);
}

/// Fig. 7 MK1 predicted column: completion times at tref = 0.0354 s match
/// the paper to its printed 3-decimal precision.
#[test]
fn fig7_mk1_predicted_column() {
    let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
    let mk1 = schemes::mk1().with_uniform_size(1_000_000);
    let res = solver.solve(&mk1);
    let tref_units = 1_000_000.0;
    let paper = [
        ("a", 0.089),
        ("b", 0.089),
        ("c", 0.071),
        ("d", 0.053),
        ("e", 0.035),
        ("f", 0.053),
        ("g", 0.071),
    ];
    for (label, tp) in paper {
        let id = mk1.by_label(label).unwrap();
        let got = res[id.idx()].completion / tref_units * 0.0354;
        // the paper prints 3 decimals: our value must round to it
        assert!(
            (got - tp).abs() <= 5.5e-4,
            "{label}: fluid gives {got:.4}, paper prints {tp}"
        );
    }
}

/// Fig. 7 MK2 predicted column, same convention.
#[test]
fn fig7_mk2_predicted_column() {
    let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
    let mk2 = schemes::mk2().with_uniform_size(1_000_000);
    let res = solver.solve(&mk2);
    let tref_units = 1_000_000.0;
    let paper = [
        ("a", 0.177),
        ("b", 0.177),
        ("c", 0.177),
        ("d", 0.177),
        ("e", 0.053),
        ("f", 0.085),
        ("g", 0.085),
        ("h", 0.101),
        ("i", 0.101),
        ("j", 0.073),
    ];
    for (label, tp) in paper {
        let id = mk2.by_label(label).unwrap();
        let got = res[id.idx()].completion / tref_units * 0.0354;
        assert!(
            (got - tp).abs() < 1.5e-3,
            "{label}: fluid gives {got:.4}, paper prints {tp}"
        );
    }
}

/// Fig. 4 predicted column: GigE model penalties × the paper's
/// tref = 0.0477 s reproduce the printed times.
#[test]
fn fig4_predicted_column() {
    let model = GigabitEthernetModel::default();
    let g = schemes::fig4(4_000_000);
    let p = model.penalties(g.comms());
    let tref = 0.0477;
    // a, b, d, e, f match the printed values; c is discussed in DESIGN.md
    let paper = [
        ("a", 0.095),
        ("b", 0.095),
        ("d", 0.069),
        ("e", 0.103),
        ("f", 0.103),
    ];
    for (label, tp) in paper {
        let id = g.by_label(label).unwrap();
        let got = p[id.idx()].value() * tref;
        assert!(
            (got - tp).abs() < 1.5e-3,
            "{label}: model gives {got:.4}, paper prints {tp}"
        );
    }
    // c: the reception-side term 3β(1+2γi)·tref = 0.115 ≈ printed 0.113
    let c = g.by_label("c").unwrap();
    let pi_c = model.pi(g.comms(), c.idx()) * tref;
    assert!((pi_c - 0.113).abs() < 3e-3, "c: pi gives {pi_c:.4}");
}

/// §V.A: β estimated from the Fig. 2 ladder penalties is 0.75.
#[test]
fn beta_estimation_from_paper_numbers() {
    let beta = netbw::core::calibrate::estimate_beta(&[(2, 1.5), (3, 2.25)]).unwrap();
    assert!((beta - 0.75).abs() < 1e-12);
}

/// §V.A: γ estimators recover the paper's parameters from its Fig. 4
/// measured times (ta = 0.095, tf = 0.103, tref = 0.0477).
#[test]
fn gamma_estimation_from_paper_numbers() {
    let (go, gi) = netbw::core::calibrate::estimate_gammas(0.75, 0.0477, 0.095, 0.103).unwrap();
    assert!((go - 0.115).abs() < 0.008, "gamma_o = {go:.4}");
    assert!((gi - 0.036).abs() < 0.012, "gamma_i = {gi:.4}");
}

/// Fig. 2, simulated fabrics: schemes 1–4 reproduce the paper's clean rows.
#[test]
fn fig2_schemes_1_to_4_on_simulated_fabrics() {
    use netbw::packet::measure_penalties;
    // (scheme, fabric index, comm index, paper value, tolerance)
    let cases = [
        (2usize, 0usize, 0usize, 1.5, 0.06),
        (3, 0, 0, 2.25, 0.09),
        (4, 0, 3, 1.15, 0.08),
        (2, 1, 0, 1.9, 0.1),
        (3, 1, 0, 2.8, 0.15),
        (4, 1, 3, 1.45, 0.12),
        (2, 2, 0, 1.725, 0.09),
        (3, 2, 0, 2.61, 0.13),
        (4, 2, 3, 1.14, 0.06),
    ];
    let fabrics = FabricConfig::paper_fabrics();
    for (scheme, fi, ci, want, tol) in cases {
        let g = schemes::fig2_scheme(scheme);
        let m = measure_penalties(fabrics[fi], &g);
        assert!(
            (m.penalties[ci] - want).abs() < tol,
            "scheme {scheme} fabric {} comm {ci}: {} vs paper {want}",
            fabrics[fi].name,
            m.penalties[ci]
        );
    }
}
