//! The shipped `.scheme` files parse, analyse and predict correctly —
//! they double as DSL documentation and as end-to-end fixtures.

use netbw::graph::{analysis, dsl};
use netbw::prelude::*;
use std::fs;
use std::path::Path;

fn load(name: &str) -> CommGraph {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/schemes")
        .join(name);
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    dsl::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn all_shipped_schemes_parse() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/schemes");
    let mut found = 0;
    for entry in fs::read_dir(&dir).expect("schemes directory exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("scheme") {
            let text = fs::read_to_string(&path).expect("readable");
            let g = dsl::parse(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"));
            assert!(!g.is_empty(), "{path:?} is empty");
            assert!(!g.name().is_empty(), "{path:?} has no scheme name");
            // round-trip through the canonical form
            assert_eq!(dsl::parse(&dsl::emit(&g)).unwrap(), g);
            found += 1;
        }
    }
    assert!(
        found >= 3,
        "expected at least three scheme files, found {found}"
    );
}

#[test]
fn fig5_file_matches_builtin() {
    assert_eq!(load("fig5.scheme"), netbw::graph::schemes::fig5());
}

#[test]
fn shift8_is_conflict_free_everywhere() {
    let g = load("shift8.scheme");
    let a = analysis::analyse(&g);
    assert_eq!(a.conflict_edges, 0);
    for kind in netbw::core::ModelKind::ALL {
        let model = kind.build();
        for p in model.penalties(g.comms()) {
            assert_eq!(p.value(), 1.0, "{kind}");
        }
    }
}

#[test]
fn hotspot_predictions_are_sensible() {
    let g = load("hotspot.scheme");
    let model = GigabitEthernetModel::default();
    let p = model.penalties(g.comms());
    let by = |l: &str| p[g.by_label(l).unwrap().idx()].value();
    // two incomes per reducer: pi = 2β(1±γi) ≈ 1.5
    assert!((by("a") - 1.5).abs() < 0.12, "a = {}", by("a"));
    assert!((by("c") - 1.5).abs() < 0.12, "c = {}", by("c"));
    // the checkpoint leaves node 4 alone on the egress side: penalty 1
    // under the GigE model (duplex-blind), but the Myrinet/IB views differ
    assert_eq!(by("e"), 1.0);
    let ib = InfinibandModel::default().penalties(g.comms());
    let e_ib = ib[g.by_label("e").unwrap().idx()].value();
    assert!(e_ib >= 1.3, "IB sees the duplex coupling: {e_ib}");
}
