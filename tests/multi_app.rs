//! Multi-application co-scheduling (§VI.A: "one or more application"):
//! independent jobs interfere through the network only.

use netbw::prelude::*;
use netbw::trace::merge;
use netbw::workloads::pipeline;

/// Two independent 2-task transfer jobs placed so their sends leave the
/// same node: each must slow the other (outgoing conflict), even though
/// they never exchange messages.
#[test]
fn coscheduled_apps_interfere_through_shared_nics() {
    let job = || {
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(0).send(1u32, 1_000_000);
        tr.task_mut(1).recv(0u32, 1_000_000);
        tr
    };
    let (merged, spans) = merge(&[job(), job()]).unwrap();
    assert_eq!(merged.len(), 4);
    assert_eq!(spans.len(), 2);

    let cluster = ClusterSpec {
        nodes: 4,
        cores_per_node: 2,
        mem_bandwidth: 1e12,
        eager_threshold: 0,
    };
    // both senders (global ranks 0 and 2) on node 0; receivers elsewhere
    let shared = PlacementPolicy::Explicit(vec![
        netbw::graph::NodeId(0),
        netbw::graph::NodeId(1),
        netbw::graph::NodeId(0),
        netbw::graph::NodeId(2),
    ]);
    // fully disjoint: no shared sources, no shared destinations
    let apart = PlacementPolicy::Explicit(vec![
        netbw::graph::NodeId(0),
        netbw::graph::NodeId(1),
        netbw::graph::NodeId(2),
        netbw::graph::NodeId(3),
    ]);

    let run = |policy: &PlacementPolicy| {
        let placement = Placement::assign(policy, 4, &cluster);
        let backend = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit());
        Simulator::new(&merged, cluster, placement, backend)
            .run()
            .unwrap()
    };

    let shared_run = run(&shared);
    let apart_run = run(&apart);
    // sharing the sender NIC doubles both jobs' transfer times
    assert!(
        shared_run.makespan() > 1.9 * apart_run.makespan() / 1.03,
        "shared {:.0} vs apart {:.0}",
        shared_run.makespan(),
        apart_run.makespan()
    );
    // and the per-task mean penalties expose it
    let p = shared_run.task_mean_penalties(1.0);
    assert!(p[0] > 1.9 && p[2] > 1.9, "penalties {p:?}");
    let q = apart_run.task_mean_penalties(1.0);
    assert!(q[0] < 1.01 && q[2] < 1.01, "penalties {q:?}");
}

/// A pipeline job co-scheduled with a bulk transfer: the bulk job stretches
/// the pipeline's forwarding stage that shares its NIC.
#[test]
fn pipeline_slowed_by_bulk_neighbour() {
    let pipe = pipeline(3, 4, 2_000_000, 0.0);
    let mut bulk = Trace::with_tasks(2);
    bulk.task_mut(0).send(1u32, 32_000_000);
    bulk.task_mut(1).recv(0u32, 32_000_000);
    let (merged, _) = merge(&[pipe.clone(), bulk]).unwrap();

    let cluster = ClusterSpec {
        nodes: 5,
        cores_per_node: 2,
        mem_bandwidth: 1e12,
        eager_threshold: 0,
    };
    // pipeline stage 1 (global rank 1) shares node with bulk sender (rank 3)
    let mk_placement = |shared: bool| {
        let nodes = if shared {
            vec![0u32, 1, 2, 1, 4]
        } else {
            vec![0u32, 1, 2, 3, 4]
        };
        PlacementPolicy::Explicit(nodes.into_iter().map(netbw::graph::NodeId).collect())
    };
    let run = |policy: PlacementPolicy| {
        let placement = Placement::assign(&policy, 5, &cluster);
        let backend = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit());
        Simulator::new(&merged, cluster, placement, backend)
            .run()
            .unwrap()
            .tasks[2]
            .finish
    };
    let slow = run(mk_placement(true));
    let fast = run(mk_placement(false));
    assert!(
        slow > fast * 1.05,
        "pipeline sink should finish later when stage 1 shares a NIC: {slow:.0} vs {fast:.0}"
    );
}
