//! End-to-end HPL pipeline tests: trace generation → placement → replay
//! against both backends → per-task comparison (the Fig. 8/9 machinery).

use netbw::eval::compare_hpl;
use netbw::prelude::*;

fn small_hpl() -> HplConfig {
    HplConfig {
        n: 2048,
        nb: 128,
        tasks: 8,
        ..HplConfig::paper()
    }
}

#[test]
fn hpl_replays_on_all_policies_and_models() {
    let hpl = small_hpl();
    let cluster = ClusterSpec::smp(4);
    for policy in [
        PlacementPolicy::RoundRobinNode,
        PlacementPolicy::RoundRobinProcessor,
        PlacementPolicy::Random(7),
    ] {
        let cmp = compare_hpl(
            &hpl,
            &cluster,
            &policy,
            MyrinetModel::default(),
            FabricConfig::myrinet2000(),
        )
        .unwrap_or_else(|e| panic!("{policy}: {e}"));
        assert_eq!(cmp.sm.len(), 8);
        assert!(cmp.makespan_measured > 0.0);
        // prediction within 35 % of the packet-simulated measurement
        let ratio = cmp.makespan_predicted / cmp.makespan_measured;
        assert!(
            (0.65..1.35).contains(&ratio),
            "{policy}: makespan ratio {ratio:.2}"
        );
    }
}

#[test]
fn rrp_reduces_network_traffic_versus_rrn() {
    // with 2 cores per node, RRP makes every other ring message intra-node
    let hpl = small_hpl();
    let cluster = ClusterSpec::smp(4);
    let trace = hpl.trace();

    let count_inter = |policy: &PlacementPolicy| {
        let placement = Placement::assign(policy, trace.len(), &cluster);
        let backend = FluidNetwork::new(MyrinetModel::default(), NetworkParams::myrinet2000());
        let report = Simulator::new(&trace, cluster, placement, backend)
            .run()
            .unwrap();
        report.messages.iter().filter(|m| !m.intra_node).count()
    };
    let rrn = count_inter(&PlacementPolicy::RoundRobinNode);
    let rrp = count_inter(&PlacementPolicy::RoundRobinProcessor);
    assert!(
        rrp * 2 <= rrn + 1,
        "RRP ({rrp} inter-node msgs) should halve RRN's ({rrn})"
    );
}

#[test]
fn rrp_outperforms_rrn_on_makespan() {
    let hpl = small_hpl();
    let cluster = ClusterSpec::smp(4);
    let trace = hpl.trace();
    let makespan = |policy: &PlacementPolicy| {
        let placement = Placement::assign(policy, trace.len(), &cluster);
        let backend = FluidNetwork::new(MyrinetModel::default(), NetworkParams::myrinet2000());
        Simulator::new(&trace, cluster, placement, backend)
            .run()
            .unwrap()
            .makespan()
    };
    let rrn = makespan(&PlacementPolicy::RoundRobinNode);
    let rrp = makespan(&PlacementPolicy::RoundRobinProcessor);
    assert!(
        rrp < rrn,
        "keeping ring neighbours on-node must help: RRP {rrp:.3} vs RRN {rrn:.3}"
    );
}

#[test]
fn trace_round_trips_through_text_format() {
    let trace = small_hpl().trace();
    let text = netbw::trace::write_trace(&trace);
    let back = netbw::trace::parse_trace(&text).unwrap();
    assert_eq!(back, trace);
}

#[test]
fn per_task_sums_are_consistent_with_message_records() {
    let hpl = small_hpl();
    let cluster = ClusterSpec::smp(4);
    let trace = hpl.trace();
    let placement = Placement::assign(&PlacementPolicy::RoundRobinNode, trace.len(), &cluster);
    let backend = FluidNetwork::new(MyrinetModel::default(), NetworkParams::myrinet2000());
    let report = Simulator::new(&trace, cluster, placement, backend)
        .run()
        .unwrap();
    let sums = report.task_send_sums();
    assert_eq!(sums.len(), 8);
    let total: f64 = sums.iter().sum();
    let from_messages: f64 = report.messages.iter().map(|m| m.send_duration()).sum();
    assert!((total - from_messages).abs() < 1e-9);
}
