//! Cross-crate tolerance tests: each paper model against its simulated
//! fabric, over the full synthetic battery.

use netbw::eval::{compare_scheme, parallel_map};
use netbw::graph::schemes;
use netbw::graph::units::MB;
use netbw::prelude::*;
use netbw::workloads::random_battery;

#[test]
fn gige_model_tracks_gige_fabric_on_ladders() {
    let model = GigabitEthernetModel::default();
    for k in 1..=5 {
        let g = schemes::outgoing_ladder(k).with_uniform_size(8 * MB);
        let cmp = compare_scheme(&model, FabricConfig::gige(), &g);
        assert!(cmp.eabs < 4.0, "ladder {k}: Eabs {:.1}%", cmp.eabs);
    }
}

#[test]
fn myrinet_model_tracks_myrinet_fabric_on_paper_graphs() {
    let model = MyrinetModel::default();
    // MK1 (paper Eabs 2.6 % on real hardware; our fabric is a simulator):
    let mk1 = compare_scheme(
        &model,
        FabricConfig::myrinet2000(),
        &schemes::mk1().with_uniform_size(8 * MB),
    );
    assert!(mk1.eabs < 20.0, "MK1 Eabs {:.1}%", mk1.eabs);
    // MK2: the paper itself reports the model pessimistic on complete
    // graphs (+23.7 % worst case); our fabric shares more efficiently than
    // the 2008 hardware, so the gap is wider but bounded:
    let mk2 = compare_scheme(
        &model,
        FabricConfig::myrinet2000(),
        &schemes::mk2().with_uniform_size(8 * MB),
    );
    assert!(mk2.eabs < 45.0, "MK2 Eabs {:.1}%", mk2.eabs);
    // direction check: on the hub flows (a–d) the model must be
    // pessimistic (positive Erel), as the paper observes
    for i in 0..4 {
        assert!(
            mk2.erel[i] > 0.0,
            "comm {i} should be over-predicted, Erel = {:.1}",
            mk2.erel[i]
        );
    }
}

#[test]
fn paper_models_beat_baselines_on_random_battery() {
    use netbw::core::baseline::{LinearModel, MaxConflictModel};
    let battery = random_battery(8, 8, 9, 4 * MB, 20080 /* seed */);
    let results = parallel_map(&battery, 0, |g| {
        let own = compare_scheme(&MyrinetModel::default(), FabricConfig::myrinet2000(), g).eabs;
        let lin = compare_scheme(&LinearModel, FabricConfig::myrinet2000(), g).eabs;
        let max = compare_scheme(&MaxConflictModel, FabricConfig::myrinet2000(), g).eabs;
        (own, lin, max)
    });
    let mean =
        |f: fn(&(f64, f64, f64)) -> f64| results.iter().map(f).sum::<f64>() / results.len() as f64;
    let own = mean(|r| r.0);
    let lin = mean(|r| r.1);
    let max = mean(|r| r.2);
    assert!(
        own < lin,
        "state-set model ({own:.1}%) must beat the contention-blind baseline ({lin:.1}%)"
    );
    // Reproduction finding (see EXPERIMENTS.md): against our simulated
    // fabric the Kim & Lee max-conflict baseline is *competitive* with the
    // state-set model on random graphs — the paper's decisive advantage
    // was measured against real Myrinet hardware, whose Stop & Go blocking
    // is stronger than our store-and-forward approximation. We only
    // guard that the state-set model stays in the same accuracy class.
    assert!(
        own < 1.6 * max + 5.0,
        "state-set model ({own:.1}%) left the accuracy class of the max-conflict baseline ({max:.1}%)"
    );
}

#[test]
fn infiniband_extension_tracks_ib_fabric() {
    let model = InfinibandModel::default();
    for scheme in [
        schemes::outgoing_ladder(2),
        schemes::outgoing_ladder(3),
        schemes::fig2_scheme(4),
    ] {
        let cmp = compare_scheme(
            &model,
            FabricConfig::infinihost3(),
            &scheme.with_uniform_size(8 * MB),
        );
        assert!(cmp.eabs < 8.0, "{}: Eabs {:.1}%", cmp.scheme, cmp.eabs);
    }
}

#[test]
fn calibrating_on_the_fabric_does_not_degrade_default_parameters() {
    // A model calibrated against the simulated fabric should predict that
    // fabric at least as well as the paper's parameters predict it, on the
    // calibration schemes themselves.
    use netbw::core::calibrate::calibrate_gige;
    use netbw::packet::SchemeMeasurer;
    let mut measurer = SchemeMeasurer::new(FabricConfig::gige(), 8);
    let fitted = calibrate_gige(&mut measurer, 20 * MB, 4 * MB).unwrap();
    let default = GigabitEthernetModel::default();
    let g = schemes::outgoing_ladder(3).with_uniform_size(8 * MB);
    let e_fit = compare_scheme(&fitted, FabricConfig::gige(), &g).eabs;
    let e_def = compare_scheme(&default, FabricConfig::gige(), &g).eabs;
    assert!(
        e_fit <= e_def + 1.0,
        "fitted {e_fit:.2}% should not be worse than default {e_def:.2}%"
    );
}
