//! NetworkBackend equivalence smoke test: the fluid (predicted) and
//! packet (measured) backends must agree on *completion ordering* for the
//! paper's Fig. 5 scheme when both are driven through the `netbw-sim`
//! engine. Absolute times differ — that gap is exactly what the Erel/Eabs
//! metrics quantify — but the paper's qualitative story (d, e, f finish
//! before a, b, c) must hold on both sides of the comparison.

use netbw::graph::NodeId;
use netbw::prelude::*;
use netbw::sim::NetworkBackend;

/// Builds a 12-task trace carrying the six Fig. 5 transfers (one
/// sender/receiver task pair per communication, placed on the scheme's
/// nodes) plus the placement realising it.
fn fig5_trace() -> (Trace, Vec<NodeId>) {
    let scheme = netbw::graph::schemes::fig5();
    let comms = scheme.comms();
    let mut trace = Trace::with_tasks(2 * comms.len());
    let mut nodes = Vec::with_capacity(2 * comms.len());
    for (i, c) in comms.iter().enumerate() {
        let sender = 2 * i;
        let receiver = 2 * i + 1;
        trace.task_mut(sender).send(receiver as u32, c.size);
        trace.task_mut(receiver).recv(sender as u32, c.size);
        nodes.push(c.src);
        nodes.push(c.dst);
    }
    (trace, nodes)
}

/// Runs the Fig. 5 trace over `backend`, returning communication indices
/// sorted by message completion time.
fn completion_order<B: NetworkBackend>(backend: B) -> Vec<usize> {
    let (trace, nodes) = fig5_trace();
    let cluster = ClusterSpec {
        nodes: 6,
        cores_per_node: 4,
        mem_bandwidth: 1e12,
        eager_threshold: 0,
    };
    let placement = Placement::assign(&PlacementPolicy::Explicit(nodes), trace.len(), &cluster);
    let report = Simulator::new(&trace, cluster, placement, backend)
        .run()
        .expect("fig5 trace replays");
    assert_eq!(report.messages.len(), 6, "all six transfers must complete");
    let mut order: Vec<(f64, usize)> = report
        .messages
        .iter()
        .map(|m| (m.end, m.src_task / 2))
        .collect();
    order.sort_by(|a, b| a.0.total_cmp(&b.0));
    order.into_iter().map(|(_, i)| i).collect()
}

#[test]
fn fluid_and_packet_backends_agree_on_fig5_completion_ordering() {
    // comms a..f are indices 0..6. The paper's Fig. 6 penalties (a,b,c = 5;
    // d,e,f = 2.5) order the scheme: a lightly-conflicted flow finishes
    // first and a triple-conflicted node-0 flow finishes last. The packet
    // fabric shares differently in the middle of the field (that gap is
    // what Eabs measures), so the smoke test pins the ordering facts that
    // must agree: d and f strictly precede a, the first finisher is one of
    // {d,e,f}, and the last is one of {a,b,c}.
    let fluid = completion_order(FluidNetwork::new(
        MyrinetModel::default(),
        NetworkParams::myrinet2000(),
    ));
    let packet = completion_order(PacketNetwork::new(FabricConfig::myrinet2000(), 6));
    for (name, order) in [("fluid", &fluid), ("packet", &packet)] {
        let pos = |comm: usize| order.iter().position(|&i| i == comm).unwrap();
        assert!(
            pos(3) < pos(0) && pos(5) < pos(0),
            "{name}: d and f must finish before a (fluid {fluid:?}, packet {packet:?})"
        );
        assert!(
            [3, 4, 5].contains(&order[0]),
            "{name}: first finisher must be one of d,e,f (fluid {fluid:?}, packet {packet:?})"
        );
        assert!(
            [0, 1, 2].contains(order.last().unwrap()),
            "{name}: last finisher must be one of a,b,c (fluid {fluid:?}, packet {packet:?})"
        );
    }
}

#[test]
fn fluid_backend_reuses_penalty_cache_during_simulation() {
    let (trace, nodes) = fig5_trace();
    let cluster = ClusterSpec {
        nodes: 6,
        cores_per_node: 4,
        mem_bandwidth: 1e12,
        eager_threshold: 0,
    };
    let placement = Placement::assign(&PlacementPolicy::Explicit(nodes), trace.len(), &cluster);
    let backend = FluidNetwork::new(MyrinetModel::default(), NetworkParams::myrinet2000());
    // Hold the backend by reference so the stats survive the run.
    let mut net = backend;
    {
        let by_ref: &mut FluidNetwork<MyrinetModel> = &mut net;
        Simulator::new(&trace, cluster, placement, by_ref)
            .run()
            .expect("fig5 trace replays");
    }
    let stats = netbw::sim::NetworkBackend::cache_stats(&net).expect("fluid exposes stats");
    assert!(
        stats.reuses > stats.model_queries,
        "the engine's per-step probes should mostly hit the cache: {stats:?}"
    );
}
