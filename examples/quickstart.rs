//! Quickstart: predict bandwidth-sharing penalties for a communication
//! scheme on the paper's two modelled fabrics.
//!
//! Run with: `cargo run --release --example quickstart`

use netbw::graph::schemes;
use netbw::prelude::*;

fn main() {
    // Three concurrent 20 MB sends leave node 0 while a fourth message
    // flows into it — Fig. 2 scheme 4.
    let scheme = schemes::fig2_scheme(4);
    println!("scheme:\n{scheme}");

    // Instantaneous penalties under each model.
    for (name, model) in [
        (
            "Gigabit Ethernet",
            Box::new(GigabitEthernetModel::default()) as Box<dyn PenaltyModel>,
        ),
        ("Myrinet 2000", Box::new(MyrinetModel::default())),
        (
            "InfiniBand (extension)",
            Box::new(InfinibandModel::default()),
        ),
    ] {
        let penalties = model.penalties(scheme.comms());
        let rendered: Vec<String> = scheme
            .labels()
            .iter()
            .zip(&penalties)
            .map(|(l, p)| format!("{l}={p}"))
            .collect();
        println!("{name:<24} {}", rendered.join("  "));
    }

    // Completion times: the fluid solver integrates penalties over time,
    // re-evaluating the model as communications finish.
    let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::myrinet2000());
    println!("\npredicted completion times on Myrinet 2000:");
    for (r, (_, label, c)) in solver.solve(&scheme).iter().zip(scheme.iter()) {
        println!(
            "  {label}: {:.4} s (effective penalty {:.2})",
            r.completion,
            r.effective_penalty(solver.params(), c.size)
        );
    }

    // And the "measured" counterpart from the packet-level fabric.
    let mut fabric = PacketFabric::new(FabricConfig::myrinet2000(), 8);
    let times = fabric.run_scheme(&scheme);
    let tref = fabric.reference_time(scheme.comms()[0].size);
    println!("\nsimulated Myrinet fabric (packet level):");
    for (label, t) in scheme.labels().iter().zip(&times) {
        println!("  {label}: {t:.4} s (measured penalty {:.2})", t / tref);
    }
}
