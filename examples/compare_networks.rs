//! The paper's motivating use case for HPC integrators: given a set of
//! communication patterns, compare how the candidate interconnects share
//! bandwidth — both in penalties (sharing behaviour) and absolute time
//! (sharing behaviour × raw speed).
//!
//! Run with: `cargo run --release --example compare_networks`

use netbw::graph::schemes;
use netbw::packet::measure_penalties;
use netbw::prelude::*;

fn main() {
    let patterns = [
        ("pair", schemes::single()),
        ("outcast-3", schemes::outgoing_ladder(3)),
        ("incast-3", schemes::incoming_ladder(3)),
        ("mixed (fig2-6)", schemes::fig2_scheme(6)),
        ("tree (mk1)", schemes::mk1()),
        ("all-pairs (mk2)", schemes::mk2()),
    ];

    println!("Worst-case penalty and completion time per pattern (20 MB messages)\n");
    let mut table = Table::new([
        "pattern",
        "gige worst P",
        "gige worst T[s]",
        "myrinet worst P",
        "myrinet worst T[s]",
        "ib worst P",
        "ib worst T[s]",
    ]);
    for (name, scheme) in patterns {
        let mut row = vec![name.to_string()];
        for cfg in FabricConfig::paper_fabrics() {
            let m = measure_penalties(cfg, &scheme);
            let worst_p = m.penalties.iter().cloned().fold(0.0, f64::max);
            let worst_t = m.times.iter().cloned().fold(0.0, f64::max);
            row.push(format!("{worst_p:.2}"));
            row.push(format!("{worst_t:.3}"));
        }
        table.push(row);
    }
    print!("{}", table.to_markdown());

    println!(
        "\nReading: Gigabit Ethernet shares most gracefully (TCP absorbs new flows),\n\
         but InfiniBand's raw bandwidth keeps it fastest in absolute time on every\n\
         pattern — the paper's §IV.C conclusion."
    );
}
