//! The scheme description language (§IV.B): parse a scheme, analyse its
//! conflicts, predict penalties, and emit DOT for visualization.
//!
//! Run with: `cargo run --release --example scheme_dsl`

use netbw::graph::conflict::census;
use netbw::graph::{dot, dsl};
use netbw::prelude::*;

const SCHEME: &str = "
# A hot aggregation pattern: two reducers pull from four producers while
# a checkpoint stream leaves reducer r0's node.
scheme hotspot
a: 0 -> 4 size 16MB    # producer 0 -> reducer r0
b: 1 -> 4 size 16MB    # producer 1 -> reducer r0
c: 2 -> 5 size 16MB    # producer 2 -> reducer r1
d: 3 -> 5 size 16MB    # producer 3 -> reducer r1
e: 4 -> 6 size 32MB    # checkpoint leaves r0 while it aggregates
";

fn main() {
    let scheme = dsl::parse(SCHEME).expect("scheme parses");
    println!("parsed:\n{scheme}");

    println!("conflict census:");
    for ((_, label, _), c) in scheme.iter().zip(census(&scheme)) {
        println!(
            "  {label}: {} outgoing peer(s), {} income peer(s), {} income/outgo peer(s)",
            c.outgoing_peers, c.income_peers, c.income_outgo_peers
        );
    }

    for model in [
        Box::new(GigabitEthernetModel::default()) as Box<dyn PenaltyModel>,
        Box::new(MyrinetModel::default()),
    ] {
        let p = model.penalties(scheme.comms());
        let rendered: Vec<String> = scheme
            .labels()
            .iter()
            .zip(&p)
            .map(|(l, p)| format!("{l}={p}"))
            .collect();
        println!("{:<8} penalties: {}", model.name(), rendered.join("  "));
    }

    println!("\ncanonical DSL round-trip:\n{}", dsl::emit(&scheme));
    println!("graphviz:\n{}", dot::to_dot(&scheme));
}
