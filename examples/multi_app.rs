//! Co-scheduling two applications on one cluster: a latency-sensitive
//! pipeline and a bandwidth-hungry all-to-all interfere through the
//! network alone (the paper's "one or several applications", §VI.A).
//!
//! Run with: `cargo run --release --example multi_app`

use netbw::graph::NodeId;
use netbw::prelude::*;
use netbw::trace::merge;
use netbw::workloads::{alltoall, pipeline};

fn main() {
    let pipe = pipeline(4, 32, 2_000_000, 0.002);
    let heavy = alltoall(4, 8_000_000, 1);
    // strip the all-to-all's trailing barrier so the jobs can merge
    let mut heavy_nb = heavy.clone();
    for t in &mut heavy_nb.tasks {
        t.events.retain(|e| !matches!(e, Event::Barrier));
    }

    let (merged, spans) = merge(&[pipe.clone(), heavy_nb]).unwrap();
    println!(
        "merged {} apps into {} tasks (pipeline ranks {}..{}, alltoall {}..{})\n",
        spans.len(),
        merged.len(),
        spans[0].start,
        spans[0].end,
        spans[1].start,
        spans[1].end
    );

    let cluster = ClusterSpec::smp(4);
    let run = |nodes: Vec<u32>, label: &str| {
        let policy = PlacementPolicy::Explicit(nodes.into_iter().map(NodeId).collect());
        let placement = Placement::assign(&policy, merged.len(), &cluster);
        let backend = FluidNetwork::new(MyrinetModel::default(), NetworkParams::myrinet2000());
        let report = Simulator::new(&merged, cluster, placement, backend)
            .run()
            .expect("replays");
        let pipe_finish = (spans[0].start..spans[0].end)
            .map(|r| report.tasks[r].finish)
            .fold(0.0, f64::max);
        let heavy_finish = (spans[1].start..spans[1].end)
            .map(|r| report.tasks[r].finish)
            .fold(0.0, f64::max);
        println!(
            "{label:<28} pipeline done {pipe_finish:>7.3} s | alltoall done {heavy_finish:>7.3} s"
        );
        let p = report.task_mean_penalties(NetworkParams::myrinet2000().bandwidth);
        println!(
            "{:>28} pipeline mean penalties: {:?}",
            "",
            p[spans[0].start..spans[0].end]
                .iter()
                .map(|x| (x * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    };

    // overlapped: each node hosts one pipeline task and one alltoall task
    run(vec![0, 1, 2, 3, 0, 1, 2, 3], "overlapped placement:");
    // partitioned: pipeline on nodes 0-1, alltoall on nodes 2-3
    run(vec![0, 0, 1, 1, 2, 2, 3, 3], "partitioned placement:");

    println!(
        "\nOverlapping the jobs puts every pipeline hop in conflict with the\n\
         all-to-all's NIC traffic; partitioning isolates the pipeline at the\n\
         cost of denser alltoall conflicts inside its half of the cluster —\n\
         the models price both options before anything runs."
    );
}
