//! Predict where HPL loses time to bandwidth sharing, per scheduling
//! policy — the paper's §VI.D experiment at example scale.
//!
//! Run with: `cargo run --release --example hpl_prediction`

use netbw::eval::compare_hpl;
use netbw::prelude::*;

fn main() {
    let hpl = HplConfig {
        n: 8192,
        nb: 128,
        tasks: 16,
        ..HplConfig::paper()
    };
    let cluster = ClusterSpec::smp(8); // 8 nodes × 2 cores
    println!(
        "HPL N={} NB={} on {} nodes × {} cores, Myrinet 2000\n",
        hpl.n, hpl.nb, cluster.nodes, cluster.cores_per_node
    );

    for policy in [
        PlacementPolicy::RoundRobinNode,
        PlacementPolicy::RoundRobinProcessor,
        PlacementPolicy::Random(42),
    ] {
        let cmp = compare_hpl(
            &hpl,
            &cluster,
            &policy,
            MyrinetModel::default(),
            FabricConfig::myrinet2000(),
        )
        .expect("trace replays");
        println!(
            "{policy:<10} predicted makespan {:>7.2} s | measured (packet sim) {:>7.2} s | mean per-task comm error {:>5.1} %",
            cmp.makespan_predicted, cmp.makespan_measured, cmp.mean_eabs()
        );
        let total_sp: f64 = cmp.sp.iter().sum();
        let total_sm: f64 = cmp.sm.iter().sum();
        println!(
            "{:>10} total comm time: predicted {total_sp:.2} s, measured {total_sm:.2} s",
            ""
        );
    }

    println!(
        "\nRRP keeps ring neighbours on the same node (half the messages become\n\
         shared-memory copies) while RRN sends every message across the fabric —\n\
         the model quantifies the difference before buying either layout."
    );
}
