//! Capacity planning with predictive models: how many concurrent senders
//! can share a node before communication time doubles, and what placement
//! buys on a many-core node — the §VII outlook quantified.
//!
//! Run with: `cargo run --release --example capacity_planning`

use netbw::graph::schemes;
use netbw::prelude::*;

fn main() {
    println!("Penalty growth with concurrent senders per NIC\n");
    let mut t = Table::new(["senders", "gige model", "myrinet model", "ib model"]);
    let gige = GigabitEthernetModel::default();
    let myri = MyrinetModel::default();
    let ib = InfinibandModel::default();
    for k in 1..=16 {
        let g = schemes::outgoing_ladder(k);
        t.push([
            k.to_string(),
            gige.penalties(g.comms())[0].to_string(),
            myri.penalties(g.comms())[0].to_string(),
            ib.penalties(g.comms())[0].to_string(),
        ]);
    }
    print!("{}", t.to_markdown());

    // Where does each fabric cross "communication time doubles"?
    println!("\nsenders until penalty ≥ 2 (sharing budget of one NIC):");
    for (name, model) in [
        ("gige", Box::new(gige) as Box<dyn PenaltyModel>),
        ("myrinet", Box::new(myri)),
        ("infiniband", Box::new(ib)),
    ] {
        let k = (1..=32)
            .find(|&k| {
                let g = schemes::outgoing_ladder(k);
                model.penalties(g.comms())[0].value() >= 2.0
            })
            .unwrap();
        println!("  {name:<11} {k} concurrent senders");
    }

    // Effect of keeping ring neighbours on-node as core counts grow.
    println!("\nring of 16 tasks: fraction of traffic leaving the node, by cores/node:");
    for cores in [1usize, 2, 4, 8] {
        let nodes = 16 / cores;
        let crossing = (0..16)
            .filter(|i| (i / cores) != (((i + 1) % 16) / cores))
            .count();
        println!("  {cores:>2} cores × {nodes:>2} nodes: {crossing}/16 messages cross the fabric");
    }
    println!("\n(The RRP policy exploits exactly this: §VI.D.)");
}
